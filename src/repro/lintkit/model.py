"""Per-module AST model: scopes, call sites, writes, locks, loops.

:func:`build_module` parses one source file and extracts the facts the
rule passes consume, so every rule works off one shared, deterministic
representation instead of re-walking raw ASTs:

* every *call site* with its rendered callee text, keyword names, and
  whether it is awaited or lexically inside a ``with <lock>:`` body;
* every *self-attribute write* (assignments, augmented assignments,
  subscript stores, mutating container-method calls, ``setattr``) —
  the raw material of the lock-discipline rule;
* every unbounded *loop* (``while True:``, ``for`` over
  ``itertools.count``/``cycle`` or two-argument ``iter``) with the
  calls made in its body — the raw material of budget reachability;
* every ``with``-acquired lock with the calls made while it is held;
* the import alias table and class table (bases, methods, whether the
  class owns a ``threading.Lock``/``RLock``) used by call resolution.

Nested functions and lambdas are *merged into their enclosing
top-level definition*: their calls, loops, and writes are attributed
to the function that creates them.  This is a deliberate may-analysis
over-approximation — a closure handed to ``run_governed`` or a thread
pool executes on behalf of its creator, and the summaries must see
through it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lintkit.findings import MODULE_SCOPE

MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "move_to_end",
        "setdefault",
    }
)
"""Container methods that mutate ``self``-owned state in place."""

_BUDGET_MARKERS = ("budget", "charge")
"""Identifier fragments that mark code as budget-aware (shared with
the historical R2 heuristic, which transitive reachability extends)."""

_LOCK_FACTORY_NAMES = frozenset({"Lock", "RLock"})

_UNBOUNDED_ITERATOR_CALLS = frozenset({"count", "cycle", "repeat"})


def expr_text(node: ast.expr) -> str:
    """A compact, stable rendering of a callee/context expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{expr_text(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{expr_text(node.func)}(...)"
    if isinstance(node, ast.Subscript):
        return f"{expr_text(node.value)}[...]"
    return f"<{type(node).__name__}>"


def _mentions_budget(node: ast.AST) -> bool:
    for child in ast.walk(node):
        name: str | None = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        if name is None:
            continue
        lowered = name.lower()
        if any(marker in lowered for marker in _BUDGET_MARKERS):
            return True
    return False


@dataclass(frozen=True)
class CallSite:
    """One call expression, pre-digested for the rule passes."""

    line: int
    text: str
    name: str | None
    attr: str | None
    base: str | None
    is_self_method: bool
    is_super: bool
    num_args: int
    keywords: tuple[str | None, ...]
    awaited: bool
    in_lock: bool
    node: ast.Call = field(repr=False, compare=False)

    @property
    def has_timeout_kw(self) -> bool:
        return "timeout" in self.keywords

    @property
    def has_deadline(self) -> bool:
        """A timeout keyword or any positional argument — covers both
        ``result(timeout=t)`` and ``join(30.0)`` spellings."""
        return self.has_timeout_kw or self.num_args > 0


@dataclass(frozen=True)
class WriteSite:
    """One mutation of ``self``-owned state."""

    line: int
    target: str
    in_lock: bool


@dataclass
class LoopSite:
    """One unbounded loop and the calls made in its body."""

    line: int
    kind: str  # "while-true" | "for-unbounded"
    detail: str
    has_budget_marker: bool
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class WithLockSite:
    """One ``with <lock>:`` acquisition and its held-region calls."""

    line: int
    text: str
    callee: CallSite | None
    calls: list[CallSite] = field(default_factory=list)
    has_while_true: bool = False


@dataclass
class FunctionInfo:
    """Facts about one top-level function or method (nested defs and
    lambdas merged in, per the module docstring)."""

    qualname: str
    name: str
    cls: str | None
    path: str
    modname: str
    line: int
    end_line: int
    is_async: bool
    decorators: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    writes: list[WriteSite] = field(default_factory=list)
    loops: list[LoopSite] = field(default_factory=list)
    with_locks: list[WithLockSite] = field(default_factory=list)
    has_budget_marker: bool = False
    has_while_true: bool = False

    @property
    def is_public_method(self) -> bool:
        return self.cls is not None and not self.name.startswith("_")

    @property
    def is_contextmanager(self) -> bool:
        return any("contextmanager" in deco for deco in self.decorators)

    def has_deadlined_acquire(self) -> bool:
        return any(
            call.attr == "acquire" and call.has_deadline
            for call in self.calls
        )

    def label(self) -> str:
        if self.cls is not None:
            return f"{self.cls}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One class definition: bases, methods, lock ownership."""

    name: str
    qualname: str
    line: int
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)
    owns_lock: bool = False


@dataclass
class ModuleModel:
    """The extracted model of one source module."""

    path: str
    modname: str
    tree: ast.Module = field(repr=False)
    source: str = field(repr=False)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)

    def scope_at(self, line: int) -> str:
        """Innermost definition containing ``line`` (for suppression
        keys), or ``<module>`` for top-level code."""
        best: FunctionInfo | None = None
        for func in self.functions.values():
            if func.name == MODULE_SCOPE:
                continue
            if func.line <= line <= func.end_line:
                if best is None or func.line > best.line:
                    best = func
        return best.label() if best is not None else MODULE_SCOPE

    @property
    def module_scope(self) -> FunctionInfo:
        return self.functions[f"{self.modname}.{MODULE_SCOPE}"]


def _modname_for(path: str) -> str:
    dotted = path[:-3] if path.endswith(".py") else path
    dotted = dotted.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _is_lock_factory(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _LOCK_FACTORY_NAMES:
            return True
    return False


def _is_lockish(node: ast.expr) -> bool:
    return "lock" in expr_text(node).lower()


class _Extractor:
    """Single-pass recursive walk populating a :class:`ModuleModel`."""

    def __init__(self, module: ModuleModel) -> None:
        self.module = module
        self.func: FunctionInfo | None = None
        self.cls: ClassInfo | None = None
        self.lock_stack: list[WithLockSite] = []
        self.loop_stack: list[LoopSite] = []

    # -- module / class / function structure ------------------------

    def run(self) -> None:
        module_scope = FunctionInfo(
            qualname=f"{self.module.modname}.{MODULE_SCOPE}",
            name=MODULE_SCOPE,
            cls=None,
            path=self.module.path,
            modname=self.module.modname,
            line=1,
            end_line=len(self.module.source.splitlines()) + 1,
            is_async=False,
        )
        self.module.functions[module_scope.qualname] = module_scope
        self.func = module_scope
        for stmt in self.module.tree.body:
            self._top_level(stmt)

    def _top_level(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._record_import(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._define_function(stmt)
        elif isinstance(stmt, ast.ClassDef):
            self._define_class(stmt)
        else:
            self._scan(stmt)

    def _record_import(self, stmt: ast.Import | ast.ImportFrom) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else bound
                self.module.imports[bound] = target
        else:
            if stmt.module is None or stmt.level:
                return  # relative imports are not used in this repo
            for alias in stmt.names:
                bound = alias.asname or alias.name
                self.module.imports[bound] = f"{stmt.module}.{alias.name}"

    def _define_class(self, stmt: ast.ClassDef) -> None:
        info = ClassInfo(
            name=stmt.name,
            qualname=f"{self.module.modname}.{stmt.name}",
            line=stmt.lineno,
            bases=tuple(expr_text(base) for base in stmt.bases),
        )
        self.module.classes[stmt.name] = info
        previous = self.cls
        self.cls = info
        for node in stmt.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._define_function(node)
            else:
                self._scan(node)
        self.cls = previous

    def _define_function(
        self, stmt: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        cls_name = self.cls.name if self.cls is not None else None
        if cls_name is not None:
            qualname = (
                f"{self.module.modname}.{cls_name}.{stmt.name}"
            )
        else:
            qualname = f"{self.module.modname}.{stmt.name}"
        info = FunctionInfo(
            qualname=qualname,
            name=stmt.name,
            cls=cls_name,
            path=self.module.path,
            modname=self.module.modname,
            line=stmt.lineno,
            end_line=stmt.end_lineno or stmt.lineno,
            is_async=isinstance(stmt, ast.AsyncFunctionDef),
            decorators=tuple(
                expr_text(deco) for deco in stmt.decorator_list
            ),
        )
        info.has_budget_marker = _mentions_budget(stmt)
        self.module.functions[qualname] = info
        if self.cls is not None:
            self.cls.methods[stmt.name] = qualname
        outer_func = self.func
        outer_locks, outer_loops = self.lock_stack, self.loop_stack
        self.func = info
        self.lock_stack, self.loop_stack = [], []
        for deco in stmt.decorator_list:
            self._scan(deco)
        for node in stmt.body:
            self._scan(node)
        self.func = outer_func
        self.lock_stack, self.loop_stack = outer_locks, outer_loops

    # -- statement / expression scan --------------------------------

    def _scan(self, node: ast.AST, awaited: bool = False) -> None:
        if isinstance(node, ast.Await):
            value = node.value
            self._scan(value, awaited=isinstance(value, ast.Call))
            return
        if isinstance(node, ast.Call):
            self._record_call(node, awaited)
            for child in ast.iter_child_nodes(node):
                self._scan(child)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._scan_with(node)
            return
        if isinstance(node, ast.While):
            self._scan_while(node)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan_for(node)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._record_writes(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            # Nested definition: merge its body into the enclosing
            # function (see module docstring).
            body = (
                [node.body]
                if isinstance(node, ast.Lambda)
                else list(node.body)
            )
            for child in body:
                self._scan(child)
            return
        for child in ast.iter_child_nodes(node):
            self._scan(child)

    def _scan_with(self, node: ast.With | ast.AsyncWith) -> None:
        opened: list[WithLockSite] = []
        for item in node.items:
            self._scan(item.context_expr)
            if item.optional_vars is not None:
                self._scan(item.optional_vars)
            if not _is_lockish(item.context_expr):
                continue
            callee = None
            if isinstance(item.context_expr, ast.Call):
                callee = self._last_recorded_call(item.context_expr)
            site = WithLockSite(
                line=node.lineno,
                text=expr_text(item.context_expr),
                callee=callee,
            )
            assert self.func is not None
            self.func.with_locks.append(site)
            opened.append(site)
        self.lock_stack.extend(opened)
        for stmt in node.body:
            self._scan(stmt)
        del self.lock_stack[len(self.lock_stack) - len(opened) :]

    def _last_recorded_call(self, node: ast.Call) -> CallSite | None:
        assert self.func is not None
        for call in reversed(self.func.calls):
            if call.node is node:
                return call
        return None

    def _scan_while(self, node: ast.While) -> None:
        is_true = (
            isinstance(node.test, ast.Constant)
            and node.test.value is True
        )
        self._scan(node.test)
        if is_true:
            loop = LoopSite(
                line=node.lineno,
                kind="while-true",
                detail="'while True:'",
                has_budget_marker=_mentions_budget(node),
            )
            assert self.func is not None
            self.func.loops.append(loop)
            self.func.has_while_true = True
            for site in self.lock_stack:
                site.has_while_true = True
            self.loop_stack.append(loop)
            for stmt in node.body + node.orelse:
                self._scan(stmt)
            self.loop_stack.pop()
        else:
            for stmt in node.body + node.orelse:
                self._scan(stmt)

    def _unbounded_iter(self, node: ast.expr) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "iter" and len(node.args) == 2:
                return "iter(callable, sentinel)"
            target = self.module.imports.get(func.id, "")
            if (
                func.id in _UNBOUNDED_ITERATOR_CALLS
                and target.startswith("itertools.")
                and len(node.args) < 2
            ):
                return f"itertools.{func.id}(...)"
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "itertools"
            and func.attr in _UNBOUNDED_ITERATOR_CALLS
            and len(node.args) < 2
        ):
            return f"itertools.{func.attr}(...)"
        return None

    def _scan_for(self, node: ast.For | ast.AsyncFor) -> None:
        detail = self._unbounded_iter(node.iter)
        self._scan(node.target)
        self._scan(node.iter)
        if detail is not None:
            loop = LoopSite(
                line=node.lineno,
                kind="for-unbounded",
                detail=f"'for' over {detail}",
                has_budget_marker=_mentions_budget(node),
            )
            assert self.func is not None
            self.func.loops.append(loop)
            self.func.has_while_true = True
            for site in self.lock_stack:
                site.has_while_true = True
            self.loop_stack.append(loop)
            for stmt in node.body + node.orelse:
                self._scan(stmt)
            self.loop_stack.pop()
        else:
            for stmt in node.body + node.orelse:
                self._scan(stmt)

    # -- fact recording ---------------------------------------------

    def _record_call(self, node: ast.Call, awaited: bool) -> None:
        func = node.func
        name = attr = base = None
        is_self_method = is_super = False
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            if isinstance(value, ast.Name):
                base = value.id
                is_self_method = value.id == "self"
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "super"
            ):
                is_super = True
            else:
                root = value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    base = root.id
        site = CallSite(
            line=node.lineno,
            text=expr_text(func),
            name=name,
            attr=attr,
            base=base,
            is_self_method=is_self_method,
            is_super=is_super,
            num_args=len(node.args),
            keywords=tuple(kw.arg for kw in node.keywords),
            awaited=awaited,
            in_lock=bool(self.lock_stack),
            node=node,
        )
        assert self.func is not None
        self.func.calls.append(site)
        for loop in self.loop_stack:
            loop.calls.append(site)
        for lock in self.lock_stack:
            lock.calls.append(site)
        self._record_call_writes(site)

    def _record_call_writes(self, site: CallSite) -> None:
        assert self.func is not None
        node = site.node
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self.func.writes.append(
                WriteSite(
                    line=node.lineno,
                    target=(
                        f"self.{func.value.attr}.{func.attr}()"
                    ),
                    in_lock=site.in_lock,
                )
            )
        elif (
            isinstance(func, ast.Name)
            and func.id == "setattr"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "self"
        ):
            self.func.writes.append(
                WriteSite(
                    line=node.lineno,
                    target="setattr(self, ...)",
                    in_lock=site.in_lock,
                )
            )

    def _record_writes(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign
    ) -> None:
        assert self.func is not None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value: ast.expr | None = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        else:
            targets = [node.target]
            value = node.value
        for target in targets:
            rendered = self._self_write_target(target)
            if rendered is None:
                continue
            self.func.writes.append(
                WriteSite(
                    line=node.lineno,
                    target=rendered,
                    in_lock=bool(self.lock_stack),
                )
            )
            if (
                self.cls is not None
                and value is not None
                and isinstance(target, ast.Attribute)
                and _is_lock_factory(value)
            ):
                self.cls.owns_lock = True

    @staticmethod
    def _self_write_target(target: ast.expr) -> str | None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id == "self"
        ):
            return f"self.{target.value.attr}[...]"
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                rendered = _Extractor._self_write_target(element)
                if rendered is not None:
                    return rendered
        return None


def build_module(source: str, relative_path: str) -> ModuleModel:
    """Parse ``source`` and extract its :class:`ModuleModel`.

    ``relative_path`` is repo-relative to ``src/`` and posix-styled,
    e.g. ``repro/serve/engine.py``.  Raises :class:`SyntaxError` on
    unparsable input, like ``ast.parse``.
    """
    normalized = relative_path.replace("\\", "/")
    tree = ast.parse(source, filename=normalized)
    module = ModuleModel(
        path=normalized,
        modname=_modname_for(normalized),
        tree=tree,
        source=source,
    )
    _Extractor(module).run()
    return module
