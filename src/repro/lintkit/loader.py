"""Project loader: discover, parse, and model the repo's own source.

:func:`load_project` walks ``src/repro`` (or an explicit file list),
builds a :class:`~repro.lintkit.model.ModuleModel` per file, and wraps
them in a :class:`Project` — the object every project-wide rule
receives.  Modules are stored sorted by path and the call graph is
built from sorted structures, so rule output is identical under any
discovery order (pinned by a Hypothesis test).
"""

from __future__ import annotations

from functools import cached_property
from pathlib import Path

from repro.lintkit.model import (
    ClassInfo,
    FunctionInfo,
    ModuleModel,
    build_module,
)


def default_src_root() -> Path:
    """The ``src/`` directory this installed ``repro`` package lives
    in — lets ``repro lint --repo`` run from any working directory."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


class Project:
    """An analyzed set of modules plus its lazily-built call graph."""

    def __init__(self, modules: list[ModuleModel]) -> None:
        self.modules = sorted(modules, key=lambda m: m.path)
        self.modules_by_name = {m.modname: m for m in self.modules}

    @cached_property
    def functions(self) -> dict[str, FunctionInfo]:
        table: dict[str, FunctionInfo] = {}
        for module in self.modules:
            table.update(module.functions)
        return table

    def find_class(self, dotted: str) -> ClassInfo | None:
        """Resolve ``repro.session.cache.SessionCache`` → its info."""
        modname, _, symbol = dotted.rpartition(".")
        module = self.modules_by_name.get(modname)
        if module is None:
            return None
        return module.classes.get(symbol)

    def find_function(self, dotted: str) -> FunctionInfo | None:
        return self.functions.get(dotted)

    @cached_property
    def callgraph(self):  # noqa: ANN201 - circular-import avoidance
        from repro.lintkit.callgraph import CallGraph

        return CallGraph(self)

    def modules_in_scope(
        self, scope: tuple[str, ...], exempt: tuple[str, ...] = ()
    ) -> list[ModuleModel]:
        selected = []
        for module in self.modules:
            if module.path in exempt:
                continue
            if any(
                module.path == entry or module.path.startswith(entry)
                for entry in scope
            ):
                selected.append(module)
        return selected


def iter_project_files(src_root: Path | None = None) -> list[Path]:
    """Every ``repro`` source file, sorted for stable output."""
    root = src_root if src_root is not None else default_src_root()
    package = root / "repro"
    return sorted(
        path
        for path in package.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def load_project(
    src_root: Path | None = None, paths: list[Path] | None = None
) -> Project:
    """Load and model the project rooted at ``src_root``."""
    root = src_root if src_root is not None else default_src_root()
    files = paths if paths is not None else iter_project_files(root)
    modules = []
    for path in files:
        relative = path.resolve().relative_to(root.resolve()).as_posix()
        modules.append(build_module(path.read_text(), relative))
    return Project(modules)
