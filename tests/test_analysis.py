"""Unit tests for the schema static analyzer (:mod:`repro.analysis`):
graph structure, the emptiness fixpoint with its witness trees, the
diagnostic battery, and the pipeline/session short-circuit wiring."""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisReport,
    CardConflict,
    Diagnostic,
    analyze,
    static_empty_classes,
)
from repro.analysis.graph import (
    cycle_path,
    redundant_isa_edges,
    strongly_connected_components,
)
from repro.cr.builder import SchemaBuilder
from repro.cr.satisfiability import is_class_satisfiable
from repro.cr.schema import Card
from repro.errors import ReproError
from repro.paper import figure1_schema, meeting_schema, refined_meeting_schema
from repro.pipeline import STAGE_ANALYZE, PipelineRun, activate_run
from repro.session import ReasoningSession


def conflict_schema():
    """B refines (0,1) inherited from A up to (2,∞): B is empty."""
    return (
        SchemaBuilder("Conflict")
        .classes("A", "B", "C")
        .relationship("R", r1="A", r2="C")
        .isa("B", "A")
        .card("A", "R", "r1", 0, 1)
        .card("B", "R", "r1", 2, None)
        .build()
    )


def inversion_schema():
    """A single declaration with minc > maxc (legal; forces emptiness)."""
    return (
        SchemaBuilder("Inversion")
        .classes("A", "B")
        .relationship("R", r1="A", r2="B")
        .card("A", "R", "r1", 3, 1)
        .build()
    )


# ---------------------------------------------------------------------------
# ISA graph structure
# ---------------------------------------------------------------------------


class TestGraph:
    def test_sccs_find_the_cycle_members(self):
        schema = (
            SchemaBuilder("Cycle")
            .classes("A", "B", "C", "D")
            .relationship("R", r1="A", r2="D")
            .isa("A", "B")
            .isa("B", "C")
            .isa("C", "A")
            .build()
        )
        nontrivial = [
            scc
            for scc in strongly_connected_components(schema)
            if len(scc) > 1
        ]
        assert nontrivial == [("A", "B", "C")]

    def test_cycle_path_is_a_closed_declared_walk(self):
        schema = (
            SchemaBuilder("Cycle")
            .classes("A", "B", "C")
            .relationship("R", r1="A", r2="C")
            .isa("A", "B")
            .isa("B", "A")
            .build()
        )
        (component,) = [
            scc
            for scc in strongly_connected_components(schema)
            if len(scc) > 1
        ]
        path = cycle_path(schema, component)
        assert path[0] == path[-1]
        declared = set(schema.isa_statements)
        assert all(
            (path[i], path[i + 1]) in declared for i in range(len(path) - 1)
        )

    def test_acyclic_graph_has_only_singleton_sccs(self):
        schema = meeting_schema()
        assert all(
            len(scc) == 1 for scc in strongly_connected_components(schema)
        )

    def test_redundant_edge_detection(self):
        schema = (
            SchemaBuilder("Redundant")
            .classes("A", "B", "C")
            .relationship("R", r1="A", r2="C")
            .isa("A", "B")
            .isa("B", "C")
            .isa("A", "C")  # implied by A -> B -> C
            .build()
        )
        assert redundant_isa_edges(schema) == [("A", "C", ("A", "B", "C"))]

    def test_transitive_reduction_of_a_chain_is_clean(self):
        schema = (
            SchemaBuilder("Chain")
            .classes("A", "B", "C")
            .relationship("R", r1="A", r2="C")
            .isa("A", "B")
            .isa("B", "C")
            .build()
        )
        assert redundant_isa_edges(schema) == []


# ---------------------------------------------------------------------------
# the emptiness fixpoint and its witnesses
# ---------------------------------------------------------------------------


class TestStaticEmptiness:
    def test_local_inversion_is_seeded(self):
        schema = inversion_schema()
        empty, _ = static_empty_classes(schema)
        witness = empty["A"]
        assert isinstance(witness, CardConflict)
        assert witness.min_class == witness.max_class == "A"
        assert witness.verify(schema)

    def test_refinement_conflict_cites_both_declarations(self):
        schema = conflict_schema()
        empty, _ = static_empty_classes(schema)
        witness = empty["B"]
        assert isinstance(witness, CardConflict)
        assert (witness.min_class, witness.minc) == ("B", 2)
        assert (witness.max_class, witness.maxc) == ("A", 1)
        assert witness.min_path == ("B",)
        assert witness.max_path == ("B", "A")
        assert witness.verify(schema)

    def test_disjoint_ancestors_seed(self):
        schema = (
            SchemaBuilder("Disjoint")
            .classes("A", "B", "C")
            .relationship("R", r1="A", r2="B")
            .isa("C", "A")
            .isa("C", "B")
            .disjoint("A", "B")
            .build()
        )
        empty, _ = static_empty_classes(schema)
        assert set(empty) == {"C"}
        assert empty["C"].verify(schema)

    def test_emptiness_propagates_through_relationships(self):
        # A is inverted-empty; R's r1 role is primary on A, so R can
        # never be populated; D has an inherited minc>=1 on R.r2 — wait,
        # r2's primary is D itself, so D must participate and is empty.
        schema = (
            SchemaBuilder("Propagate")
            .classes("A", "D")
            .relationship("R", r1="A", r2="D")
            .card("A", "R", "r1", 2, 1)
            .card("D", "R", "r2", 1, None)
            .build()
        )
        empty, empty_rels = static_empty_classes(schema)
        assert set(empty) == {"A", "D"}
        assert set(empty_rels) == {"R"}
        assert empty["D"].kind == "required-participation"
        assert empty["D"].verify(schema)
        assert empty_rels["R"].verify(schema)

    def test_emptiness_propagates_down_isa_and_through_coverings(self):
        schema = (
            SchemaBuilder("Cascade")
            .classes("A", "B", "C", "G")
            .relationship("R", r1="A", r2="G")
            .card("A", "R", "r1", 3, 2)
            .isa("B", "A")
            .cover("C", "B")
            .build()
        )
        empty, _ = static_empty_classes(schema)
        assert set(empty) == {"A", "B", "C"}
        assert empty["B"].kind in {"empty-super", "card-conflict"}
        assert empty["C"].kind == "uncovered-class"
        assert all(witness.verify(schema) for witness in empty.values())

    def test_satisfiable_paper_schemas_are_statically_clean(self):
        for schema in (meeting_schema(), refined_meeting_schema()):
            empty, empty_rels = static_empty_classes(schema)
            assert empty == {}
            assert empty_rels == {}

    def test_figure1_is_beyond_static_reach(self):
        # Figure 1 is finitely unsatisfiable for arithmetic reasons but
        # satisfiable over infinite models — no all-model emptiness
        # proof exists, so the sound static battery must stay silent.
        empty, _ = static_empty_classes(figure1_schema())
        assert empty == {}


# ---------------------------------------------------------------------------
# diagnostics and the analyzer battery
# ---------------------------------------------------------------------------


class TestAnalyze:
    def test_clean_schema_has_no_diagnostics(self):
        report = analyze(meeting_schema())
        assert report.clean
        assert report.unsat_classes == frozenset()
        assert report.pretty() == "no diagnostics"

    def test_error_diagnostics_carry_verified_witnesses(self):
        schema = conflict_schema()
        report = analyze(schema)
        assert [d.code for d in report.errors] == ["card-refinement-conflict"]
        assert report.unsat_classes == frozenset({"B"})
        assert report.verify(schema)
        assert report.unsat_witness("B") is report.errors[0]
        assert report.unsat_witness("A") is None

    def test_local_inversion_gets_its_own_code(self):
        report = analyze(inversion_schema())
        assert [d.code for d in report.errors] == ["card-inversion"]

    def test_severity_ordering_errors_first(self):
        schema = (
            SchemaBuilder("Mixed")
            .classes("A", "B", "C", "D")
            .relationship("R", r1="A", r2="D")
            .card("A", "R", "r1", 2, 0)
            .isa("B", "C")
            .isa("C", "B")
            .build()
        )
        report = analyze(schema)
        severities = [d.severity for d in report.diagnostics]
        assert severities == sorted(
            severities, key=["error", "warning", "info"].index
        )
        assert report.warnings  # the cycle
        assert report.errors  # the inversion

    def test_unreferenced_and_duplicate_infos(self):
        schema = (
            SchemaBuilder("Dupes")
            .classes("A", "B", "C", "D", "E")
            .relationship("R", r1="A", r2="A")
            .isa("B", "A")
            .isa("C", "A")
            .build()
        )
        report = analyze(schema)
        codes = {d.code for d in report.infos}
        assert "class-unreferenced" in codes  # D, E
        assert "class-duplicate" in codes  # B and C
        unreferenced = {
            d.classes[0]
            for d in report.infos
            if d.code == "class-unreferenced"
        }
        assert unreferenced == {"D", "E"}

    def test_dead_relationship_warning(self):
        schema = (
            SchemaBuilder("Dead")
            .classes("A", "B")
            .relationship("R", r1="A", r2="B")
            .card("A", "R", "r1", 2, 1)
            .build()
        )
        report = analyze(schema)
        assert any(d.code == "rel-unsatisfiable" for d in report.warnings)
        rel_warning = next(
            d for d in report.warnings if d.code == "rel-unsatisfiable"
        )
        assert rel_warning.relationships == ("R",)
        assert rel_warning.classes == ()

    def test_json_encoding_is_stable(self):
        report = analyze(conflict_schema())
        payload = report.as_dict()
        assert set(payload) == {"schema", "diagnostics", "summary"}
        assert payload["summary"]["error"] == 1
        assert payload["summary"]["unsat_classes"] == ["B"]
        (diagnostic,) = payload["diagnostics"]
        assert set(diagnostic) == {
            "code",
            "severity",
            "message",
            "classes",
            "relationships",
            "witness",
        }
        assert diagnostic["witness"]["kind"] == "card-conflict"

    def test_report_runs_under_the_analyze_stage(self):
        run = PipelineRun(clock=iter(range(100)).__next__)
        with activate_run(run):
            analyze(meeting_schema())
        assert run.stages[STAGE_ANALYZE].runs == 1

    def test_error_diagnostic_requires_a_witness(self):
        with pytest.raises(ReproError):
            Diagnostic(
                code="bogus", severity="error", message="m", classes=("A",)
            )

    def test_report_rejects_inconsistent_unsat_classes(self):
        with pytest.raises(ReproError):
            AnalysisReport(
                schema_name="S",
                diagnostics=(),
                unsat_classes=frozenset({"A"}),
            )


# ---------------------------------------------------------------------------
# effective-card accessors on the schema (witness surface)
# ---------------------------------------------------------------------------


class TestWitnessAccessors:
    def test_isa_path_walks_declared_edges(self):
        schema = conflict_schema()
        assert schema.isa_path("B", "A") == ("B", "A")
        assert schema.isa_path("B", "B") == ("B",)
        assert schema.isa_path("A", "B") is None

    def test_effective_card_intersects_the_chain(self):
        schema = conflict_schema()
        assert schema.effective_card("B", "R", "r1") == Card(2, 1)
        assert schema.effective_card("A", "R", "r1") == Card(0, 1)
        sources = schema.effective_card_sources("B", "R", "r1")
        assert [cls for cls, _ in sources] == ["A", "B"]


# ---------------------------------------------------------------------------
# pipeline short-circuit: stateless API and sessions
# ---------------------------------------------------------------------------


class TestShortCircuit:
    def test_stateless_precheck_serves_the_diagnostic(self):
        schema = conflict_schema()
        result = is_class_satisfiable(schema, "B", precheck=True)
        assert not result.satisfiable
        assert result.engine == "analysis"
        assert result.diagnostic is not None
        assert result.diagnostic.code == "card-refinement-conflict"
        assert result.cr_system is None  # no expansion was built

    def test_stateless_precheck_agrees_with_the_oracle(self):
        schema = conflict_schema()
        oracle = is_class_satisfiable(schema, "B")
        assert oracle.satisfiable is False
        assert oracle.diagnostic is None  # precheck off by default

    def test_session_short_circuit_skips_the_expansion(self):
        schema = conflict_schema()
        session = ReasoningSession(schema)
        result = session.is_class_satisfiable("B")
        assert not result.satisfiable
        assert result.engine == "analysis"
        stats = session.stats
        assert stats.analysis_runs == 1
        assert stats.analysis_short_circuits == 1
        assert stats.expansion_builds == 0  # never expanded

    def test_session_satisfiable_class_still_runs_the_pipeline(self):
        schema = conflict_schema()
        session = ReasoningSession(schema)
        result = session.is_class_satisfiable("A")
        assert result.satisfiable
        assert result.engine == "session"
        stats = session.stats
        assert stats.expansion_builds == 1
        assert stats.analysis_runs == 1  # report cached, not re-run

    def test_session_report_is_cached_across_queries(self):
        schema = conflict_schema()
        session = ReasoningSession(schema)
        session.is_class_satisfiable("B")
        session.is_class_satisfiable("B")
        stats = session.stats
        assert stats.analysis_runs == 1
        assert stats.analysis_short_circuits == 2

    def test_session_verdict_table_agrees(self):
        schema = conflict_schema()
        verdicts = ReasoningSession(schema).satisfiable_classes()
        assert verdicts == {"A": True, "B": False, "C": True}

    def test_figure1_never_short_circuits(self):
        # Finite-only unsatisfiability is invisible to the analyzer;
        # the session must fall through to the full procedure.
        schema = figure1_schema()
        session = ReasoningSession(schema)
        result = session.is_class_satisfiable(schema.classes[0])
        assert result.engine == "session"
        assert session.stats.analysis_short_circuits == 0
