"""Unit tests for class satisfiability (Theorems 3.3 / 3.4)."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.expansion import Expansion
from repro.cr.satisfiability import (
    acceptable_support,
    is_acceptable,
    is_class_satisfiable,
    is_schema_fully_satisfiable,
    satisfiable_classes,
)
from repro.cr.system import build_system
from repro.errors import ReproError
from repro.paper import figure1_schema

ENGINES = ["fixpoint", "naive"]


class TestMeetingSchema:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("cls", ["Speaker", "Discussant", "Talk"])
    def test_every_class_satisfiable(self, meeting, engine, cls):
        result = is_class_satisfiable(meeting, cls, engine=engine)
        assert result.satisfiable
        assert result.engine == engine
        assert result.solution is not None

    def test_witness_is_acceptable_solution(self, meeting):
        result = is_class_satisfiable(meeting, "Speaker")
        solution = result.solution
        cr_system = result.cr_system
        full = {name: solution.get(name, 0) for name in cr_system.system.variables}
        assert cr_system.system.is_satisfied_by(full)
        assert is_acceptable(solution, cr_system.dependencies)

    def test_witness_populates_the_class(self, meeting):
        result = is_class_satisfiable(meeting, "Discussant")
        populated = sum(
            result.witness_count(result.cr_system.class_var[cc])
            for cc in result.cr_system.expansion.consistent_classes_containing(
                "Discussant"
            )
        )
        assert populated > 0

    def test_satisfiable_classes_in_one_run(self, meeting):
        assert satisfiable_classes(meeting) == {
            "Speaker": True,
            "Discussant": True,
            "Talk": True,
        }
        assert is_schema_fully_satisfiable(meeting)


class TestFigure1:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_both_classes_finitely_unsatisfiable(self, figure1, engine):
        for cls in ("C", "D"):
            result = is_class_satisfiable(figure1, cls, engine=engine)
            assert not result.satisfiable
            assert result.solution is None

    def test_ratio_one_is_the_satisfiability_boundary(self):
        assert satisfiable_classes(figure1_schema(1)) == {"C": True, "D": True}
        assert satisfiable_classes(figure1_schema(2)) == {"C": False, "D": False}
        assert satisfiable_classes(figure1_schema(5)) == {"C": False, "D": False}

    def test_unsatisfiable_witness_raises(self, figure1):
        result = is_class_satisfiable(figure1, "C")
        with pytest.raises(ReproError):
            result.witness_count("anything")


class TestRefinedMeeting:
    """Section 3.3: adding minc(Discussant, Holds, U1) = 2 kills the schema."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_speaker_unsatisfiable(self, refined_meeting, engine):
        assert not is_class_satisfiable(
            refined_meeting, "Speaker", engine=engine
        ).satisfiable

    def test_every_class_unsatisfiable(self, refined_meeting):
        verdicts = satisfiable_classes(refined_meeting)
        assert verdicts == {
            "Speaker": False,
            "Discussant": False,
            "Talk": False,
        }
        assert not is_schema_fully_satisfiable(refined_meeting)

    def test_refinement_disequations_present(self, refined_meeting):
        # The paper: the new constraint is reflected by
        # 2*ci <= hi3 + hi5 + hi7 for i in {4, 7}.
        cr_system = build_system(Expansion(refined_meeting), mode="pruned")
        for index in (4, 7):
            row = next(
                c
                for c in cr_system.system
                if c.label == f"min:Holds:U1:{index}"
            )
            assert row.expr.coefficient(f"c{index}") == 2


class TestAcceptability:
    def test_acceptable_solution(self):
        deps = {"r": ("c1", "c2")}
        assert is_acceptable({"r": 1, "c1": 1, "c2": 2}, deps)
        assert is_acceptable({"r": 0, "c1": 0, "c2": 0}, deps)

    def test_unacceptable_solution(self):
        deps = {"r": ("c1", "c2")}
        assert not is_acceptable({"r": 1, "c1": 0, "c2": 2}, deps)

    def test_missing_entries_default_to_zero(self):
        deps = {"r": ("c1",)}
        assert not is_acceptable({"r": 3}, deps)

    def test_acceptability_matters(self):
        # A schema where the plain LP has a solution but no acceptable
        # one: R's role U2 is tied to class B, which must be empty
        # (B <= A and B disjoint from A is impossible), while A needs an
        # R tuple each.  The naive LP could still set Var(R-tuples) > 0
        # with Var(B-compounds) = 0 — acceptability forbids exactly that.
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .isa("B", "A")
            .disjoint("A", "B")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=1)
            .build()
        )
        verdicts = satisfiable_classes(schema)
        assert verdicts == {"A": False, "B": False}


class TestAcceptableSupport:
    def test_support_and_witness_agree(self, meeting_system):
        support, solution = acceptable_support(meeting_system)
        assert support == {
            name for name, value in solution.items() if value > 0
        }

    def test_fixpoint_forces_dependent_relationships(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .isa("B", "A")
            .disjoint("A", "B")
            .relationship("R", U1="A", U2="B")
            .build()
        )
        cr_system = build_system(Expansion(schema), mode="pruned")
        support, _ = acceptable_support(cr_system)
        # No consistent compound class contains B, so every relationship
        # unknown (each depends on a B-compound in role U2) is forced out.
        assert not any(name in support for name in cr_system.rel_var.values())
        # A alone is still satisfiable.
        a_vars = {
            cr_system.class_var[cc]
            for cc in cr_system.expansion.consistent_classes_containing("A")
        }
        assert a_vars & support


class TestEngines:
    def test_unknown_engine_rejected(self, meeting):
        with pytest.raises(ReproError):
            is_class_satisfiable(meeting, "Speaker", engine="quantum")

    def test_naive_engine_size_guard(self):
        builder = SchemaBuilder().classes(*[f"K{i}" for i in range(5)])
        builder.relationship("R", U1="K0", U2="K1")
        schema = builder.build()  # 31 consistent compound classes
        with pytest.raises(ReproError, match="zero-sets"):
            is_class_satisfiable(schema, "K0", engine="naive")

    def test_expansion_can_be_reused(self, meeting, meeting_expansion):
        result = is_class_satisfiable(
            meeting, "Talk", expansion=meeting_expansion
        )
        assert result.satisfiable

    def test_unknown_class_rejected(self, meeting):
        with pytest.raises(Exception):
            is_class_satisfiable(meeting, "Ghost")
