"""Differential testing against a brute-force finite-model oracle.

The oracle (:func:`oracle_model`) decides class satisfiability the
dumb, obviously-correct way: enumerate every interpretation over a
bounded domain and ask the Definition-2.2 checker whether it is a
model populating the class.  It is exponential in everything, but on
the tiny schemas the strategies generate it is exact *up to the domain
bound* — which yields two one-sided agreement properties with the
Section-3 decision procedure:

* oracle finds a model  ⟹  the procedure answers SAT;
* the procedure answers UNSAT  ⟹  the oracle finds nothing.

The completeness direction (procedure SAT ⟹ some finite model) is
covered exactly rather than boundedly: the procedure's own Theorem-3.4
witness is re-validated by the checker and must populate the class.

The enumeration is staged so the oracle stays fast: class-extension
candidates are pre-pruned against ISA/disjointness/covering, and each
relationship's extension is chosen independently (cardinality
declarations couple one relationship to the class extensions, never
two relationships to each other).  Every model the oracle returns is
re-validated with :func:`repro.cr.checker.check_model`, so the staging
cannot silently diverge from the real semantics.

Also here: the ISA-free agreement property — on schemas without ISA
(and without the Section-5 extensions) the Lenzerini–Nobili baseline,
the full procedure, and a :class:`repro.session.ReasoningSession` must
return identical per-class verdicts.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cr.baseline import baseline_satisfiable_classes
from repro.cr.checker import check_model
from repro.cr.construction import construct_model_for_result
from repro.cr.interpretation import Interpretation
from repro.cr.satisfiability import is_class_satisfiable, satisfiable_classes
from repro.cr.schema import CRSchema, Relationship
from repro.session import ReasoningSession
from tests.strategies import property_max_examples, schemas

ORACLE_DOMAIN = 2
"""Domain bound for the brute-force search.  Two individuals already
distinguish every constraint kind the strategies generate (ISA
violations, disjointness overlaps, cardinality deficits); pushing to 3
multiplies the search space without changing any verdict on shrunken
counterexamples."""


def _class_extension_candidates(schema: CRSchema, domain: tuple[str, ...]):
    """All class-extension maps over ``domain`` that respect ISA,
    disjointness, and covering (conditions the relationship extensions
    cannot repair, so pruning here is sound)."""
    subsets = [
        frozenset(combo)
        for size in range(len(domain) + 1)
        for combo in itertools.combinations(domain, size)
    ]
    for extents in itertools.product(subsets, repeat=len(schema.classes)):
        class_ext = dict(zip(schema.classes, extents))
        if any(
            not class_ext[sub] <= class_ext[sup]
            for sub, sup in schema.isa_statements
        ):
            continue
        if any(
            class_ext[first] & class_ext[second]
            for group in schema.disjointness_groups
            for first, second in itertools.combinations(sorted(group), 2)
        ):
            continue
        if any(
            not class_ext[covered]
            <= frozenset().union(*(class_ext[cls] for cls in coverers))
            for covered, coverers in schema.coverings
        ):
            continue
        yield class_ext


def _relationship_choices(
    schema: CRSchema,
    rel: Relationship,
    class_ext: dict[str, frozenset[str]],
):
    """All extensions of ``rel`` (typed tuple subsets) satisfying every
    cardinality declaration on ``rel`` under ``class_ext``."""
    roles = [role for role, _ in rel.signature]
    pools = [
        sorted(class_ext[rel.primary_class(role)]) for role in roles
    ]
    tuples = [
        dict(zip(roles, combo)) for combo in itertools.product(*pools)
    ]
    cards = [
        (cls, role, card)
        for (cls, rel_name, role), card in schema.declared_cards.items()
        if rel_name == rel.name
    ]
    for size in range(len(tuples) + 1):
        for chosen in itertools.combinations(tuples, size):
            ok = True
            for cls, role, card in cards:
                for individual in class_ext[cls]:
                    count = sum(
                        1 for tup in chosen if tup[role] == individual
                    )
                    if count < card.minc or (
                        card.maxc is not None and count > card.maxc
                    ):
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                yield list(chosen)


def oracle_model(
    schema: CRSchema, cls: str, max_domain: int = ORACLE_DOMAIN
) -> Interpretation | None:
    """A checker-validated model of ``schema`` populating ``cls`` with
    at most ``max_domain`` individuals, or ``None`` if none exists."""
    domain = tuple(f"d{i}" for i in range(max_domain))
    for class_ext in _class_extension_candidates(schema, domain):
        if not class_ext[cls]:
            continue
        rel_ext = {}
        for rel in schema.relationships:
            choice = next(
                _relationship_choices(schema, rel, class_ext), None
            )
            if choice is None:
                rel_ext = None
                break
            rel_ext[rel.name] = choice
        if rel_ext is None:
            continue
        model = Interpretation.build(class_ext, rel_ext, extra_domain=domain)
        violations = check_model(schema, model)
        assert not violations, (
            "oracle accepted a non-model — staging bug: "
            f"{[v for v in violations]}"
        )
        return model
    return None


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@settings(max_examples=property_max_examples())
@given(data=st.data())
def test_procedure_agrees_with_bounded_oracle(data):
    schema = data.draw(schemas(max_classes=3, allow_extensions=True))
    cls = data.draw(st.sampled_from(schema.classes))
    result = is_class_satisfiable(schema, cls)
    small_model = oracle_model(schema, cls)

    if small_model is not None:
        assert result.satisfiable, (
            f"oracle found a {ORACLE_DOMAIN}-element model populating "
            f"{cls!r} but the procedure says UNSAT"
        )
    if result.satisfiable:
        witness = construct_model_for_result(result)
        assert not check_model(schema, witness)
        assert witness.instances_of(cls)
    else:
        assert small_model is None


@settings(max_examples=property_max_examples())
@given(data=st.data())
def test_isa_free_schemas_agree_with_baseline(data):
    schema = data.draw(schemas(allow_isa=False))
    expected = baseline_satisfiable_classes(schema)
    assert satisfiable_classes(schema) == expected
    assert ReasoningSession(schema).satisfiable_classes() == expected


# ---------------------------------------------------------------------------
# deterministic anchors
# ---------------------------------------------------------------------------


def test_figure1_oracle_agreement(figure1):
    """Figure 1 is the paper's finitely-unsatisfiable pathology: the
    oracle and the procedure must agree class by class."""
    verdicts = satisfiable_classes(figure1)
    assert not all(verdicts.values())
    for cls, satisfiable in verdicts.items():
        model = oracle_model(figure1, cls)
        if model is not None:
            assert satisfiable
        if not satisfiable:
            assert model is None


def test_meeting_every_class_has_small_model(meeting):
    for cls in meeting.classes:
        model = oracle_model(meeting, cls, max_domain=ORACLE_DOMAIN)
        assert model is not None
        assert model.instances_of(cls)
