"""Unit and property tests for unrestricted-model satisfiability."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cr.builder import SchemaBuilder
from repro.cr.satisfiability import satisfiable_classes
from repro.cr.unrestricted import (
    finitely_controllable_classes,
    is_class_unrestricted_satisfiable,
    unrestricted_satisfiable_classes,
)
from repro.paper import figure1_schema

from tests.strategies import schemas


class TestPaperSchemas:
    def test_figure1_is_the_motivating_gap(self, figure1):
        """Figure 1 has no finite model — but it has an infinite one."""
        assert satisfiable_classes(figure1) == {"C": False, "D": False}
        assert unrestricted_satisfiable_classes(figure1) == {
            "C": True,
            "D": True,
        }
        assert finitely_controllable_classes(
            figure1, satisfiable_classes(figure1)
        ) == {"C": False, "D": False}

    def test_meeting_schema_is_controllable(self, meeting):
        finite = satisfiable_classes(meeting)
        assert unrestricted_satisfiable_classes(meeting) == finite
        assert all(
            finitely_controllable_classes(meeting, finite).values()
        )

    def test_refined_meeting_satisfiable_only_infinitely(
        self, refined_meeting
    ):
        # The Section-3.3 conflict is a counting argument; with infinite
        # cardinalities it evaporates.
        assert unrestricted_satisfiable_classes(refined_meeting) == {
            "Speaker": True,
            "Discussant": True,
            "Talk": True,
        }


class TestLocalConditions:
    def test_contradictory_bounds_kill_unrestrictedly_too(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=3, maxc=2)
            .build()
        )
        verdicts = unrestricted_satisfiable_classes(schema)
        assert verdicts["A"] is False
        assert verdicts["B"] is True

    def test_unsuppliable_minimum(self):
        # A needs an R tuple, but B's side forbids any (maxc = 0), so no
        # usable compound relationship exists even in infinite models.
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=1)
            .card("B", "R", "U2", maxc=0)
            .build()
        )
        verdicts = unrestricted_satisfiable_classes(schema)
        assert verdicts["A"] is False
        assert verdicts["B"] is True

    def test_elimination_propagates(self):
        # C supplies B, B supplies A; kill C and the chain collapses.
        schema = (
            SchemaBuilder()
            .classes("A", "B", "C")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=1)
            .relationship("Q", V1="B", V2="C")
            .card("B", "Q", "V1", minc=1)
            .card("C", "Q", "V2", maxc=0)
            .build()
        )
        verdicts = unrestricted_satisfiable_classes(schema)
        assert verdicts == {"A": False, "B": False, "C": True}

    def test_ratios_are_harmless_unrestrictedly(self):
        # |R| = 2|A| = |B| with B <= A: the Figure-1 shape, directly.
        assert is_class_unrestricted_satisfiable(figure1_schema(2), "D")
        assert is_class_unrestricted_satisfiable(figure1_schema(100), "D")

    def test_self_supply_cycles_are_viable(self):
        # Everyone mentors someone and is mentored: an infinite chain
        # (or any finite cycle) works; type elimination must keep it.
        schema = (
            SchemaBuilder()
            .classes("P")
            .relationship("Mentors", boss="P", pupil="P")
            .card("P", "Mentors", "boss", minc=1, maxc=1)
            .card("P", "Mentors", "pupil", minc=1, maxc=1)
            .build()
        )
        assert is_class_unrestricted_satisfiable(schema, "P")


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_finite_satisfiability_implies_unrestricted(data):
    """Finite models are unrestricted models, so the implication must
    hold on every random schema."""
    schema = data.draw(schemas(max_classes=3, allow_extensions=True))
    finite = satisfiable_classes(schema)
    unrestricted = unrestricted_satisfiable_classes(schema)
    for cls in schema.classes:
        if finite[cls]:
            assert unrestricted[cls], (
                f"{cls} finitely satisfiable but not unrestrictedly?!"
            )
