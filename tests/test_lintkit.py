"""Tests for ``repro.lintkit`` — the dataflow-aware repo contract
checker behind ``repro lint --repo``.

Three layers:

* a **fixture corpus** of known-bad snippets, one per rule R1–R12,
  each asserting the expected rule id, line anchor, and (for the
  dataflow rules) the witness chain — plus the matching known-good
  twin that must stay silent;
* the **clean-repo gate**: the real repo, linted against the
  checked-in baseline, reports zero new findings;
* a **Hypothesis order-stability** property: rule output is identical
  under every module discovery order.
"""

from __future__ import annotations

import json
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.lintkit import (
    Baseline,
    Project,
    RULES,
    all_rule_ids,
    default_baseline_path,
    lint_repo,
    run_rules,
    sort_findings,
)
from repro.lintkit.model import build_module


def project_of(*mods: tuple[str, str]) -> Project:
    return Project(
        [build_module(textwrap.dedent(src), path) for path, src in mods]
    )


def findings_for(rule_id: str, *mods: tuple[str, str]):
    return run_rules(project_of(*mods), (rule_id,))


class TestRegistry:
    def test_all_twelve_rules_registered(self):
        assert all_rule_ids() == tuple(f"R{i}" for i in range(1, 13))

    def test_every_rule_states_its_contract(self):
        run_rules(project_of(), ())  # force registry population
        for rule in RULES.values():
            assert rule.title and rule.contract and rule.scope

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ReproError):
            run_rules(project_of(), ("R99",))


class TestR1Floats:
    def test_float_literal(self):
        (f,) = findings_for("R1", ("repro/linalg/bad.py", "X = 0.5\n"))
        assert (f.rule, f.line, f.scope) == ("R1", 1, "<module>")
        assert "float literal 0.5" in f.message

    def test_scope_is_enclosing_function(self):
        (f,) = findings_for(
            "R1",
            ("repro/solver/core.py", "def f():\n    return float(3)\n"),
        )
        assert f.scope == "f"

    def test_out_of_scope_module_ignored(self):
        assert not findings_for("R1", ("repro/serve/app.py", "X = 0.5\n"))


class TestR2BudgetReachability:
    BAD = (
        "repro/solver/spin.py",
        """
        def spin():
            while True:
                step()

        def step():
            return 1
        """,
    )

    def test_unreached_while_true_flagged_with_witness(self):
        (f,) = findings_for("R2", self.BAD)
        assert (f.rule, f.line, f.scope) == ("R2", 3, "spin")
        assert "'while True:' without a budget charge/check" in f.message
        assert f.witness == (
            "repro.solver.spin.spin (repro/solver/spin.py:3) "
            "'while True:'",
            "no call in the loop body reaches a budget charge/check "
            "transitively",
        )

    def test_transitive_budget_charge_silences(self):
        # The charge is two calls away — the historical same-scope
        # heuristic could not see it; the call-graph analysis must.
        good = (
            "repro/solver/spin.py",
            """
            def spin():
                while True:
                    step()

            def step():
                deduct()

            def deduct(budget=None):
                budget.charge(1)
            """,
        )
        assert not findings_for("R2", good)

    def test_for_over_unbounded_iterable_flagged(self):
        (f,) = findings_for(
            "R2",
            (
                "repro/solver/sweep.py",
                """
                import itertools

                def sweep():
                    for k in itertools.count():
                        probe(k)

                def probe(k):
                    return k
                """,
            ),
        )
        assert f.line == 5
        assert "'for' over itertools.count(...)" in f.message

    def test_in_body_marker_is_still_a_fast_path(self):
        good = (
            "repro/solver/spin.py",
            """
            def spin(budget):
                while True:
                    budget.charge(1)
            """,
        )
        assert not findings_for("R2", good)


class TestR3Popitem:
    def test_popitem_flagged(self):
        (f,) = findings_for(
            "R3",
            ("repro/solver/tab.py", "def f(d):\n    d.popitem()\n"),
        )
        assert (f.rule, f.line) == ("R3", 2)


class TestR4SpawnOnly:
    def test_fork_context_flagged(self):
        (f,) = findings_for(
            "R4",
            (
                "repro/parallel/pool.py",
                "import multiprocessing\n"
                'ctx = multiprocessing.get_context("fork")\n',
            ),
        )
        assert (f.rule, f.line) == ("R4", 2)

    def test_spawn_context_clean(self):
        assert not findings_for(
            "R4",
            (
                "repro/parallel/pool.py",
                "import multiprocessing\n"
                'ctx = multiprocessing.get_context("spawn")\n',
            ),
        )


class TestR5DeadlinedWaits:
    def test_bare_result_flagged(self):
        (f,) = findings_for(
            "R5",
            ("repro/parallel/pool.py", "def f(fut):\n    fut.result()\n"),
        )
        assert (f.rule, f.line) == ("R5", 2)
        assert "result() without timeout=" in f.message


class TestR6AtomicWrites:
    def test_write_mode_open_flagged(self):
        (f,) = findings_for(
            "R6",
            ("repro/store/index.py", 'def f(p):\n    open(p, "w")\n'),
        )
        assert (f.rule, f.line) == ("R6", 2)

    def test_atomic_helper_module_exempt(self):
        assert not findings_for(
            "R6",
            ("repro/store/atomic.py", 'def f(p):\n    open(p, "w")\n'),
        )


class TestR7NoWholeSchemaExpansion:
    def test_expansion_call_flagged(self):
        (f,) = findings_for(
            "R7",
            (
                "repro/components/split.py",
                "def f(schema):\n    return Expansion(schema)\n",
            ),
        )
        assert (f.rule, f.line) == ("R7", 2)


class TestR8LockDiscipline:
    BAD = (
        "repro/serve/state.py",
        """
        import threading

        class Handler:
            def __init__(self):
                self.lock = threading.Lock()
                self.count = 0

            def handle(self):
                self.count += 1
        """,
    )

    def test_unguarded_write_flagged_with_chain(self):
        (f,) = findings_for("R8", self.BAD)
        assert (f.rule, f.line, f.scope) == ("R8", 10, "Handler.handle")
        assert "write to self.count" in f.message
        assert f.witness[-1] == (
            "unguarded write at repro/serve/state.py:10"
        )
        assert "repro.serve.state.Handler.handle" in f.witness[0]

    def test_write_under_owning_lock_clean(self):
        good = (
            "repro/serve/state.py",
            """
            import threading

            class Handler:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.count = 0

                def handle(self):
                    with self.lock:
                        self.count += 1
            """,
        )
        assert not findings_for("R8", good)

    def test_lockless_class_not_protected(self):
        good = (
            "repro/serve/state.py",
            """
            class Plain:
                def handle(self):
                    self.count = 1
            """,
        )
        assert not findings_for("R8", good)


class TestR9DeadlineDiscipline:
    def test_undeadlined_acquire_flagged(self):
        (f,) = findings_for(
            "R9",
            (
                "repro/session/cache.py",
                "def f(lock):\n    lock.acquire()\n",
            ),
        )
        assert (f.rule, f.line) == ("R9", 2)
        assert "lock.acquire() without a deadline" in f.message

    def test_deadlined_acquire_clean(self):
        assert not findings_for(
            "R9",
            (
                "repro/session/cache.py",
                "def f(lock):\n    lock.acquire(timeout=5)\n",
            ),
        )

    def test_lock_held_across_unbounded_work_flagged(self):
        (f,) = findings_for(
            "R9",
            (
                "repro/serve/eng.py",
                """
                import threading

                LOCK = threading.Lock()

                def serve():
                    with LOCK:
                        grind()

                def grind():
                    while True:
                        pass
                """,
            ),
        )
        assert (f.rule, f.line, f.scope) == ("R9", 7, "serve")
        assert "'with LOCK:' acquires a lock with no deadline" in f.message
        assert f.witness[0] == (
            "repro.serve.eng.serve (repro/serve/eng.py:7) "
            "holds 'with LOCK:'"
        )
        assert f.witness[-1] == "unbounded loop at repro/serve/eng.py:11"

    def test_loop_directly_inside_held_region(self):
        (f,) = findings_for(
            "R9",
            (
                "repro/serve/eng.py",
                """
                import threading

                LOCK = threading.Lock()

                def serve():
                    with LOCK:
                        while True:
                            pass
                """,
            ),
        )
        assert f.witness[-1] == (
            "unbounded loop directly inside the held region"
        )

    def test_deadlined_guard_contextmanager_exempts_hold(self):
        good = (
            "repro/serve/eng.py",
            """
            import threading
            from contextlib import contextmanager

            LOCK = threading.Lock()

            @contextmanager
            def hold_lock():
                if not LOCK.acquire(timeout=30):
                    raise RuntimeError("wedged")
                try:
                    yield
                finally:
                    LOCK.release()

            def serve():
                with hold_lock():
                    grind()

            def grind():
                while True:
                    pass
            """,
        )
        assert not findings_for("R9", good)


class TestR10AsyncBlocking:
    BAD = (
        "repro/serve/app.py",
        """
        async def handler():
            return load()

        def load():
            return open("x")
        """,
    )

    def test_blocking_call_reachable_from_async_flagged(self):
        (f,) = findings_for("R10", self.BAD)
        assert (f.rule, f.path, f.line) == ("R10", "repro/serve/app.py", 6)
        assert (
            "blocking call open() is reachable from async handler()"
            in f.message
        )
        assert f.witness[-1] == "blocking open() at repro/serve/app.py:6"

    def test_sync_only_entry_points_ignored(self):
        good = (
            "repro/serve/app.py",
            """
            def handler():
                return load()

            def load():
                return open("x")
            """,
        )
        assert not findings_for("R10", good)

    def test_str_join_with_argument_not_a_thread_join(self):
        # Regression: ``"sep".join(parts)`` carries a positional
        # argument, so the wait-attr heuristic must not fire.
        good = (
            "repro/serve/http.py",
            """
            async def render(parts):
                return ",".join(parts)
            """,
        )
        assert not findings_for("R10", good)


class TestR11DeterminismTaint:
    BAD = (
        "repro/solver/order.py",
        """
        def f(items):
            chosen = {x for x in items}
            return [x for x in chosen]
        """,
    )

    def test_set_into_list_comprehension_flagged(self):
        (f,) = findings_for("R11", self.BAD)
        assert (f.rule, f.line, f.scope) == ("R11", 4, "f")
        assert f.witness == (
            "set chosen constructed at repro/solver/order.py:3",
            "iterated at repro/solver/order.py:4",
            "ordered sink list comprehension at repro/solver/order.py:4",
        )

    def test_sorted_launders(self):
        good = (
            "repro/solver/order.py",
            """
            def f(items):
                chosen = {x for x in items}
                return sorted(chosen)
            """,
        )
        assert not findings_for("R11", good)

    def test_for_over_set_with_append_flagged(self):
        (f,) = findings_for(
            "R11",
            (
                "repro/parallel/fan.py",
                """
                def f(items):
                    out = []
                    for x in set(items):
                        out.append(x)
                    return out
                """,
            ),
        )
        assert f.line == 4
        assert ".append(...)" in f.message

    def test_reassigned_nonset_name_untainted(self):
        good = (
            "repro/solver/order.py",
            """
            def f(items):
                chosen = {x for x in items}
                chosen = sorted(chosen)
                return [x for x in chosen]
            """,
        )
        assert not findings_for("R11", good)


class TestR12PickleSafety:
    BAD = (
        "repro/parallel/fan.py",
        """
        def launch(pool):
            payload = {"fn": lambda x: x}
            pool.submit_task(payload=payload)
        """,
    )

    def test_lambda_in_payload_flagged(self):
        (f,) = findings_for("R12", self.BAD)
        assert (f.rule, f.line, f.scope) == ("R12", 4, "launch")
        assert "a lambda" in f.message
        assert f.witness == (
            "payload constructed at repro/parallel/fan.py:4",
            "offending value at repro/parallel/fan.py:3: a lambda",
        )

    def test_nested_function_in_payload_flagged(self):
        (f,) = findings_for(
            "R12",
            (
                "repro/parallel/fan.py",
                """
                def launch(pool):
                    def helper(x):
                        return x
                    pool.submit_task(payload={"fn": helper})
                """,
            ),
        )
        assert "nested function helper()" in f.message

    def test_lock_in_worker_pool_payload_flagged(self):
        (f,) = findings_for(
            "R12",
            (
                "repro/parallel/fan.py",
                """
                import threading

                def launch():
                    return WorkerPool({"ev": threading.Event()})
                """,
            ),
        )
        assert "Event() (a synchronization primitive)" in f.message

    def test_plain_data_payload_clean(self):
        good = (
            "repro/parallel/fan.py",
            """
            def launch(pool, work):
                pool.submit_task(payload={"items": list(work)})
            """,
        )
        assert not findings_for("R12", good)


class TestBaselineGate:
    def test_suppression_requires_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {"rule": "R1", "path": "x.py", "scope": "f"}
                    ],
                }
            )
        )
        with pytest.raises(ReproError, match="justification"):
            Baseline.load(path)

    def test_split_new_baselined_stale(self):
        from repro.lintkit import Suppression
        from repro.lintkit.findings import Finding

        baseline = Baseline(
            suppressions=(
                Suppression("R1", "a.py", "f", "accepted"),
                Suppression("R3", "gone.py", "g", "obsolete"),
            )
        )
        matched = Finding("R1", "a.py", 3, "msg", scope="f")
        fresh = Finding("R1", "b.py", 9, "msg", scope="h")
        new, baselined, stale = baseline.split([matched, fresh])
        assert new == [fresh]
        assert baselined == [matched]
        assert [s.rule for s in stale] == ["R3"]

    def test_suppression_survives_line_drift(self):
        from repro.lintkit.findings import Finding

        early = Finding("R1", "a.py", 3, "msg", scope="f")
        late = Finding("R1", "a.py", 300, "msg", scope="f")
        assert early.suppression_key() == late.suppression_key()


class TestCleanRepo:
    def test_repo_has_no_new_findings(self):
        report = lint_repo()
        rendered = "\n".join(report.render_human())
        assert report.is_clean, rendered
        assert not report.stale_suppressions, rendered
        assert report.files_checked > 50

    def test_every_baselined_finding_is_justified(self):
        baseline = Baseline.load(default_baseline_path())
        for suppression in baseline.suppressions:
            assert len(suppression.justification) > 20
            assert suppression.rule in all_rule_ids()


FIXTURE_MODULES = [
    TestR2BudgetReachability.BAD,
    TestR8LockDiscipline.BAD,
    TestR10AsyncBlocking.BAD,
    TestR11DeterminismTaint.BAD,
    TestR12PickleSafety.BAD,
    ("repro/linalg/vals.py", "X = 0.5\n"),
    ("repro/store/index.py", 'def f(p):\n    open(p, "w")\n'),
]


class TestDiscoveryOrderStability:
    @settings(max_examples=25, deadline=None)
    @given(
        order=st.permutations(list(range(len(FIXTURE_MODULES)))),
    )
    def test_findings_identical_under_any_order(self, order):
        baseline_run = run_rules(project_of(*FIXTURE_MODULES))
        shuffled = [FIXTURE_MODULES[i] for i in order]
        assert run_rules(project_of(*shuffled)) == baseline_run

    def test_sort_findings_is_canonical(self):
        findings = run_rules(project_of(*FIXTURE_MODULES))
        assert findings == sort_findings(list(reversed(findings)))
        assert len(findings) >= 5
