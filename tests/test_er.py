"""Unit tests for the ER front-end and its CR translation."""

from __future__ import annotations

import pytest

from repro.cr.satisfiability import satisfiable_classes
from repro.cr.schema import Card, UNBOUNDED
from repro.er import ERSchema, er_to_cr, render_er_diagram
from repro.errors import DuplicateSymbolError, SchemaError, UnknownSymbolError
from repro.paper import figure1_er, meeting_er, meeting_schema


class TestERDeclarations:
    def test_duplicate_entity_rejected(self):
        er = ERSchema().entity("A")
        with pytest.raises(DuplicateSymbolError):
            er.entity("A")

    def test_duplicate_relationship_rejected(self):
        er = ERSchema().entity("A").entity("B")
        er.relationship("R", ("U1", "A", 0, None), ("U2", "B", 0, None))
        with pytest.raises(DuplicateSymbolError):
            er.relationship("R", ("U3", "A", 0, None), ("U4", "B", 0, None))

    def test_unary_relationship_rejected(self):
        er = ERSchema().entity("A")
        with pytest.raises(SchemaError):
            er.relationship("R", ("U1", "A", 0, None))

    def test_validation_catches_unknown_symbols(self):
        er = ERSchema().entity("A", isa=["Ghost"])
        with pytest.raises(UnknownSymbolError):
            er.validate()
        er2 = ERSchema().entity("A").entity("B")
        er2.relationship("R", ("U1", "A", 0, None), ("U2", "Ghost", 0, None))
        with pytest.raises(UnknownSymbolError):
            er2.validate()

    def test_refinement_validation(self):
        er = meeting_er()
        er.refine("Speaker", "Ghost", "U1", 0, 1)
        with pytest.raises(UnknownSymbolError):
            er.validate()


class TestTranslation:
    def test_meeting_er_translates_to_figure3_schema(self):
        translated = er_to_cr(meeting_er())
        direct = meeting_schema()
        assert translated.classes == direct.classes
        assert translated.isa_statements == direct.isa_statements
        assert translated.declared_cards == direct.declared_cards
        assert [rel.signature for rel in translated.relationships] == [
            rel.signature for rel in direct.relationships
        ]

    def test_figure1_translation(self):
        schema = er_to_cr(figure1_er())
        assert schema.is_subclass("D", "C")
        assert schema.card("C", "R", "V1") == Card(2, UNBOUNDED)
        assert schema.card("D", "R", "V2") == Card(0, 1)

    def test_default_participations_create_no_declarations(self):
        er = ERSchema().entity("A").entity("B")
        er.relationship("R", ("U1", "A", 0, None), ("U2", "B", 0, None))
        schema = er_to_cr(er)
        assert schema.declared_cards == {}

    def test_disjointness_and_covering_carry_over(self):
        er = ERSchema().entity("A").entity("B").entity("C")
        er.relationship("R", ("U1", "A", 0, None), ("U2", "B", 0, None))
        er.disjoint("A", "B")
        er.cover("A", "C")
        schema = er_to_cr(er)
        assert schema.disjointness_groups == (frozenset({"A", "B"}),)
        assert schema.coverings == (("A", frozenset({"C"})),)

    def test_reasoning_through_the_er_layer(self):
        # End to end: the Figure-1 ER diagram is finitely unsatisfiable.
        assert satisfiable_classes(er_to_cr(figure1_er())) == {
            "C": False,
            "D": False,
        }


class TestDiagramRendering:
    def test_figure1_diagram_mentions_everything(self):
        text = render_er_diagram(figure1_er())
        assert "[C] --(2,N)-- <R> --(0,1)-- [D]" in text
        assert "D --isa--> C" in text

    def test_figure2_diagram_includes_refinement(self):
        text = render_er_diagram(meeting_er())
        assert "<Holds>" in text
        assert "<Participates>" in text
        assert "Discussant - - (0,2) - -> Holds.U1" in text

    def test_isolated_entities_listed(self):
        er = ERSchema().entity("A").entity("B").entity("Lonely")
        er.relationship("R", ("U1", "A", 0, None), ("U2", "B", 0, None))
        text = render_er_diagram(er)
        assert "isolated entities: Lonely" in text

    def test_extensions_rendered(self):
        er = ERSchema().entity("A").entity("B")
        er.relationship("R", ("U1", "A", 0, None), ("U2", "B", 0, None))
        er.disjoint("A", "B")
        er.cover("A", "B")
        text = render_er_diagram(er)
        assert "disjoint(A, B)" in text
        assert "A covered by B" in text
