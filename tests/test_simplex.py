"""Unit tests for the exact two-phase simplex."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.solver.linear import LinearSystem, term
from repro.solver.simplex import SimplexStatus, solve_lp


class TestFeasibility:
    def test_trivial_feasible(self):
        result = solve_lp(LinearSystem([term("x") >= 0]))
        assert result.status is SimplexStatus.OPTIMAL
        assert result.is_feasible

    def test_empty_system_is_feasible(self):
        result = solve_lp(LinearSystem(variables=["x"]))
        assert result.is_feasible
        assert result.assignment == {"x": 0}

    def test_contradictory_bounds_infeasible(self):
        system = LinearSystem([term("x") >= 3, term("x") <= 2])
        assert solve_lp(system).status is SimplexStatus.INFEASIBLE

    def test_equality_constraints(self):
        system = LinearSystem([(term("x") + term("y")).equals(4), term("x").equals(1)])
        result = solve_lp(system)
        assert result.assignment == {"x": 1, "y": 3}

    def test_implicit_nonnegativity(self):
        # x <= -1 is infeasible because x >= 0 is implicit.
        assert not solve_lp(LinearSystem([term("x") <= -1])).is_feasible

    def test_free_variable_can_go_negative(self):
        system = LinearSystem([term("x") <= -1, term("x") >= -2])
        result = solve_lp(system, free_variables=["x"])
        assert result.is_feasible
        assert -2 <= result.assignment["x"] <= -1

    def test_strict_constraints_rejected(self):
        with pytest.raises(SolverError):
            solve_lp(LinearSystem([term("x") > 0]))

    def test_zero_rhs_ge_rows(self):
        # Rows with zero right-hand side exercise the artificial-variable
        # eviction path.
        system = LinearSystem([term("x") - term("y") >= 0, term("y") >= 1])
        assert solve_lp(system).is_feasible


class TestOptimization:
    def test_simple_maximum(self):
        x, y = term("x"), term("y")
        system = LinearSystem([x + y <= 4, x - y >= 1])
        result = solve_lp(system, objective=x + 2 * y, sense="max")
        assert result.objective_value == Fraction(11, 2)
        assert result.assignment == {"x": Fraction(5, 2), "y": Fraction(3, 2)}

    def test_simple_minimum(self):
        x = term("x")
        result = solve_lp(LinearSystem([x >= 3]), objective=x, sense="min")
        assert result.objective_value == 3

    def test_unbounded(self):
        x = term("x")
        result = solve_lp(LinearSystem([x >= 1]), objective=x, sense="max")
        assert result.status is SimplexStatus.UNBOUNDED
        assert result.assignment is None

    def test_objective_constant_term(self):
        x = term("x")
        result = solve_lp(LinearSystem([x >= 2]), objective=x + 10, sense="min")
        assert result.objective_value == 12

    def test_objective_over_free_variable(self):
        x = term("x")
        system = LinearSystem([x >= -5, x <= 5])
        result = solve_lp(system, objective=x, sense="min", free_variables=["x"])
        assert result.objective_value == -5

    def test_degenerate_problem_terminates(self):
        # Beale's cycling constraint matrix: heavily degenerate (both
        # interesting rows have zero right-hand side), so this exercises
        # the Bland anti-cycling fallback.  Optimum verified against an
        # independent solver: -22/25 at (2/5, 0, 1, 1/10).
        x1, x2, x3, x4 = (term(f"x{i}") for i in range(1, 5))
        system = LinearSystem(
            [
                (Fraction(1, 4) * x1 - 8 * x2 - x3 + 9 * x4) <= 0,
                (Fraction(1, 2) * x1 - 12 * x2 - Fraction(1, 2) * x3 + 3 * x4)
                <= 0,
                x3 <= 1,
            ]
        )
        objective = (
            -Fraction(3, 4) * x1 + 150 * x2 + Fraction(1, 50) * x3 - 6 * x4
        )
        result = solve_lp(system, objective=objective, sense="min")
        assert result.status is SimplexStatus.OPTIMAL
        assert result.objective_value == Fraction(-22, 25)
        assert result.assignment == {
            "x1": Fraction(2, 5),
            "x2": Fraction(0),
            "x3": Fraction(1),
            "x4": Fraction(1, 10),
        }

    def test_invalid_sense_rejected(self):
        with pytest.raises(SolverError):
            solve_lp(LinearSystem([term("x") >= 0]), objective=term("x"), sense="best")

    def test_objective_with_undeclared_variable_rejected(self):
        with pytest.raises(SolverError):
            solve_lp(LinearSystem([term("x") >= 0]), objective=term("ghost"))


class TestExactness:
    def test_fractional_vertex_is_exact(self):
        # The optimum sits at a vertex with denominator 3; floats would
        # return 0.3333... — the exact solver must return 1/3.
        x, y = term("x"), term("y")
        system = LinearSystem([3 * x + 3 * y <= 2, x - y >= 0])
        result = solve_lp(system, objective=y, sense="max")
        assert result.assignment["y"] == Fraction(1, 3)

    def test_large_coefficients_stay_exact(self):
        x = term("x")
        big = 10**12
        system = LinearSystem([big * x <= 1])
        result = solve_lp(system, objective=x, sense="max")
        assert result.objective_value == Fraction(1, big)

    def test_assignment_satisfies_all_constraints(self):
        x, y, z = term("x"), term("y"), term("z")
        system = LinearSystem(
            [
                x + y + z <= 10,
                x - y >= 2,
                (y + z).equals(3),
                z <= 1,
            ]
        )
        result = solve_lp(system, objective=x + y + z, sense="max")
        assert result.is_feasible
        assert system.is_satisfied_by(result.assignment)
