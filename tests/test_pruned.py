"""Unit tests for the pruned zero-set search (orbit + nogood pruning).

Covers the two pruning levers of :mod:`repro.solver.pruned` in
isolation — automorphism discovery over the symmetric sibling family,
the canonicity test, nogood learning/subsumption — plus the backend
registration contract, the ``naive_limit`` size gate, exact parity with
the naive oracle (verdict, witness, support, *and* a ≥5x reduction in
LPs solved on the symmetric family), and the pinned human-readable
rendering behind ``repro explain --nogoods``.
"""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.expansion import Expansion
from repro.cr.satisfiability import class_targets, decision_problem
from repro.cr.system import build_system
from repro.errors import LimitExceededError, SolverError
from repro.runtime.fallback import DEFAULT_FALLBACK, chain_for
from repro.solver.core import InternedSystem, VariableTable
from repro.solver.pruned import (
    Nogood,
    NogoodStore,
    is_canonical,
    nogood_source_system,
    orbit_permutations,
    pruned_zero_set_search,
    render_nogoods,
)
from repro.solver.registry import (
    DEFAULT_NAIVE_LIMIT,
    AcceptabilityProblem,
    backend_names,
    get_backend,
)
from repro.solver.stats import SearchCounters, search_stats_sink


def symmetric_conflict_schema(siblings: int = 2):
    """The bench family: a root ``T`` forced empty by ``2|T| = |R| =
    |T|``, plus ``siblings`` interchangeable classes hanging off it."""
    builder = SchemaBuilder("Conflict")
    builder.cls("T")
    names = [f"A{i}" for i in range(1, siblings + 1)]
    for name in names:
        builder.cls(name)
    builder.relationship("R", u="T", v="T")
    builder.card("T", "R", "u", 2, 2)
    builder.card("T", "R", "v", 1, 1)
    for i, name in enumerate(names, start=1):
        builder.relationship(f"R{i}", **{f"x{i}": name, f"y{i}": "T"})
        builder.card(name, f"R{i}", f"x{i}", 1, 2)
    return builder.build()


def problem_for(schema, cls: str) -> AcceptabilityProblem:
    cr_system = build_system(Expansion(schema), mode="pruned")
    return decision_problem(cr_system, class_targets(cr_system, cls))


class TestRegistration:
    def test_the_pruned_backend_is_registered(self):
        assert "pruned" in backend_names()
        assert get_backend("pruned").capabilities.exponential

    def test_refuses_the_lp_primitives(self):
        pruned = get_backend("pruned")
        system = InternedSystem(VariableTable(["x"]))
        with pytest.raises(SolverError, match="no LP primitives"):
            pruned.maximal_support(system, ["x"])
        with pytest.raises(SolverError, match="no LP primitives"):
            pruned.positive_solution(system)

    def test_the_size_gate_fires(self):
        wide = InternedSystem(
            VariableTable([f"c{i}" for i in range(DEFAULT_NAIVE_LIMIT + 1)])
        )
        problem = AcceptabilityProblem(
            system=wide,
            class_unknowns=wide.table.names(),
            dependencies={},
            targets=frozenset({"c0"}),
        )
        with pytest.raises(LimitExceededError, match="naive_limit"):
            get_backend("pruned").decide_acceptable(problem)


class TestOrbits:
    def test_sibling_symmetry_is_discovered(self):
        problem = problem_for(symmetric_conflict_schema(), "T")
        permutations, orbits = orbit_permutations(problem)
        assert permutations, "interchangeable siblings must yield a perm"
        # {A1} ~ {A2} and {T, A1} ~ {T, A2}: two non-trivial orbits.
        assert orbits == 2

    def test_targets_on_a_sibling_break_the_symmetry(self):
        # Swapping A1 and A2 no longer fixes the target set, so no
        # verified automorphism survives and orbit pruning disables
        # itself (nogood learning still applies).
        problem = problem_for(symmetric_conflict_schema(), "A1")
        permutations, orbits = orbit_permutations(problem)
        assert permutations == ()
        assert orbits == 0

    def test_canonicity_partitions_the_lattice(self):
        from itertools import combinations

        problem = problem_for(symmetric_conflict_schema(), "T")
        permutations, _ = orbit_permutations(problem)
        size = len(problem.class_unknowns)
        canonical = skipped = 0
        for width in range(size + 1):
            for combo in combinations(range(size), width):
                if is_canonical(combo, permutations):
                    canonical += 1
                else:
                    skipped += 1
        assert canonical + skipped == 2**size
        assert skipped > 0
        # The identity-free test never skips a fixed point: the empty
        # and full sets are their own (only) images.
        assert is_canonical((), permutations)
        assert is_canonical(tuple(range(size)), permutations)


class TestParity:
    def test_matches_naive_with_a_5x_lp_reduction(self):
        problem = problem_for(symmetric_conflict_schema(), "T")
        chain = chain_for(DEFAULT_FALLBACK)

        naive_counters = SearchCounters()
        with search_stats_sink(naive_counters):
            expected = get_backend("naive").decide_acceptable(
                problem, chain=chain
            )
        pruned_counters = SearchCounters()
        with search_stats_sink(pruned_counters):
            actual = get_backend("pruned").decide_acceptable(
                problem, chain=chain
            )

        assert actual == expected
        assert pruned_counters.pruned_by_orbit > 0
        assert pruned_counters.pruned_by_nogood > 0
        assert pruned_counters.orbits_found == 2
        assert (
            naive_counters.zero_sets_enumerated
            >= 5 * pruned_counters.zero_sets_enumerated
        )

    def test_satisfiable_family_matches_too(self):
        builder = SchemaBuilder("Benign")
        builder.cls("T")
        for name in ("A1", "A2"):
            builder.cls(name)
        builder.relationship("R", u="T", v="T")
        builder.card("T", "R", "u", 1, 2)
        builder.card("T", "R", "v", 1, 1)
        for i in (1, 2):
            builder.relationship(f"R{i}", **{f"x{i}": f"A{i}", f"y{i}": "T"})
            builder.card(f"A{i}", f"R{i}", f"x{i}", 1, 2)
        problem = problem_for(builder.build(), "T")
        chain = chain_for(DEFAULT_FALLBACK)
        expected = get_backend("naive").decide_acceptable(problem, chain=chain)
        actual = get_backend("pruned").decide_acceptable(problem, chain=chain)
        assert expected[0]
        assert actual == expected


class TestNogoodStore:
    def _nogood(self, zeros, positives, source=()):
        return Nogood(
            zeros=frozenset(zeros),
            positives=frozenset(positives),
            source=tuple(source),
            certificate=None,
        )

    def test_a_more_general_fact_subsumes_the_specific_one(self):
        store = NogoodStore()
        assert store.install(self._nogood({"a"}, {"b", "c"}))
        assert store.install(self._nogood(set(), {"b"}))
        assert [ng.zeros for ng in store.nogoods] == [frozenset()]
        assert [ng.positives for ng in store.nogoods] == [frozenset({"b"})]

    def test_a_less_general_fact_is_refused(self):
        store = NogoodStore()
        assert store.install(self._nogood(set(), {"b"}))
        assert not store.install(self._nogood({"a"}, {"b", "c"}))
        assert len(store.nogoods) == 1

    def test_incomparable_facts_coexist(self):
        store = NogoodStore()
        assert store.install(self._nogood({"a"}, {"b"}))
        assert store.install(self._nogood({"b"}, {"a"}))
        assert len(store.nogoods) == 2

    def test_matching_respects_zeros_and_positives(self):
        nogood = self._nogood({"a"}, {"b"})
        assert nogood.matches(frozenset({"a"}))
        assert nogood.matches(frozenset({"a", "c"}))
        assert not nogood.matches(frozenset({"c"}))  # missing zero
        assert not nogood.matches(frozenset({"a", "b"}))  # hits a positive


class TestSessionFunnel:
    def test_a_pinned_pruned_backend_feeds_the_session_counters(self):
        from repro.session import ReasoningSession
        from repro.solver.registry import pin_backend

        schema = symmetric_conflict_schema()
        with pin_backend("pruned"):
            session = ReasoningSession(schema)
            result = session.is_class_satisfiable("T")
        assert not result.satisfiable
        assert result.engine == "pruned"
        stats = session.stats
        assert stats.zero_sets_enumerated > 0
        assert stats.pruned_by_orbit > 0
        assert stats.pruned_by_nogood > 0
        assert stats.orbits_found == 2

    def test_batch_stats_prints_the_pruning_line(self, tmp_path, capsys):
        from repro.cli import main
        from repro.dsl import serialize_schema

        path = tmp_path / "conflict.cr"
        path.write_text(serialize_schema(symmetric_conflict_schema()))
        code = main(
            ["batch", str(path), "--query", "sat T",
             "--backend", "pruned", "--stats"]
        )
        assert code == 1  # UNSAT verdicts exit 1
        out = capsys.readouterr().out
        assert "sat T: UNSATISFIABLE" in out
        assert (
            "# pruning: 11 zero-set(s) enumerated, 54 orbit-pruned, "
            "55 nogood-pruned, 2 orbit(s)" in out
        )


PINNED_RENDERING = """\
nogood 1: Z must contain {} and avoid {c1}
  learned from Z = {}; eliminated 0 candidate zero-set(s)
  Farkas combination over the sharpened source system:
    infeasibility proof (Farkas combination):
      2 * (2*c1 <= r11) [min:R:u:1]
      -1 * (2*c1 >= r11) [max:R:u:1]
      -1 * (c1 >= r11) [max:R:v:1]
      -1 * (c1 >= 1) [Z-positive:c1]
      => 1 <= 0 must hold, but it is >= 1 > 0 for all non-negative unknowns"""


class TestExplainRendering:
    def _loop_schema(self):
        builder = SchemaBuilder("Loop")
        builder.cls("T")
        builder.relationship("R", u="T", v="T")
        builder.card("T", "R", "u", 2, 2)
        builder.card("T", "R", "v", 1, 1)
        return builder.build()

    def test_the_farkas_nogood_rendering_is_pinned(self):
        problem = problem_for(self._loop_schema(), "T")
        store = NogoodStore()
        found, witness, support = pruned_zero_set_search(
            problem, chain=chain_for(DEFAULT_FALLBACK), store=store
        )
        assert not found and witness is None and support == frozenset()
        assert render_nogoods(problem, store) == PINNED_RENDERING

    def test_every_learned_nogood_reverifies(self):
        problem = problem_for(symmetric_conflict_schema(), "T")
        store = NogoodStore()
        pruned_zero_set_search(
            problem, chain=chain_for(DEFAULT_FALLBACK), store=store
        )
        assert store.nogoods
        for nogood in store.nogoods:
            source = set(nogood.source)
            assert nogood.zeros <= source
            assert not (nogood.positives & source)
            assert nogood.certificate.verify(
                nogood_source_system(problem, nogood)
            )

    def test_no_nogoods_renders_a_placeholder(self):
        problem = problem_for(self._loop_schema(), "T")
        assert "no nogoods learned" in render_nogoods(problem, NogoodStore())

    def test_explain_cli_appends_the_nogood_section(self, tmp_path, capsys):
        from repro.cli import main
        from repro.dsl import serialize_schema

        path = tmp_path / "loop.cr"
        path.write_text(serialize_schema(self._loop_schema()))
        assert main(["explain", str(path), "--class", "T", "--nogoods"]) == 0
        out = capsys.readouterr().out
        assert "nogoods learned while deciding 'T'" in out
        assert PINNED_RENDERING in out
