"""Unit tests for the expansion (Section 3.1) — including the literal
Figure-4 content for the meeting schema."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.expansion import CompoundClass, Expansion, ExpansionLimits
from repro.cr.schema import Card, UNBOUNDED
from repro.errors import ReproError


def compound(*members: str) -> CompoundClass:
    return CompoundClass(frozenset(members))


class TestCompoundClass:
    def test_nonempty_required(self):
        with pytest.raises(ReproError):
            CompoundClass(frozenset())

    def test_contains_and_pretty(self):
        cc = compound("B", "A")
        assert cc.contains("A")
        assert not cc.contains("C")
        assert cc.pretty() == "{A,B}"


class TestEnumerationOrder:
    def test_all_compound_classes_in_figure4_order(self, meeting_expansion):
        rendered = [
            cc.members for cc in meeting_expansion.all_compound_classes()
        ]
        S, D, T = "Speaker", "Discussant", "Talk"
        assert rendered == [
            frozenset({S}),
            frozenset({D}),
            frozenset({T}),
            frozenset({S, D}),
            frozenset({S, T}),
            frozenset({D, T}),
            frozenset({S, D, T}),
        ]

    def test_class_index_matches_enumeration(self, meeting_expansion):
        for position, cc in enumerate(
            meeting_expansion.all_compound_classes(), start=1
        ):
            assert meeting_expansion.class_index(cc) == position

    def test_class_index_without_enumeration_on_larger_schema(self):
        builder = SchemaBuilder().classes(*[f"K{i}" for i in range(10)])
        builder.relationship("R", U1="K0", U2="K1")
        # Pairwise disjointness keeps the *consistent* expansion tiny;
        # class_index is combinatorial over the full 2^10 - 1 subsets
        # regardless of consistency.
        builder.disjoint(*[f"K{i}" for i in range(10)])
        expansion = Expansion(builder.build())
        # {K0} is first; {K9} is tenth; the full set is last (2^10 - 1).
        assert expansion.class_index(compound("K0")) == 1
        assert expansion.class_index(compound("K9")) == 10
        assert (
            expansion.class_index(compound(*[f"K{i}" for i in range(10)]))
            == (1 << 10) - 1
        )


class TestConsistency:
    def test_figure4_consistent_set(self, meeting_expansion):
        indices = [
            meeting_expansion.class_index(cc)
            for cc in meeting_expansion.consistent_compound_classes()
        ]
        assert indices == [1, 3, 4, 5, 7]

    def test_is_consistent_class(self, meeting_expansion):
        assert meeting_expansion.is_consistent_class(
            compound("Discussant", "Speaker")
        )
        assert not meeting_expansion.is_consistent_class(compound("Discussant"))

    def test_consistent_classes_containing(self, meeting_expansion):
        containing_discussant = meeting_expansion.consistent_classes_containing(
            "Discussant"
        )
        indices = [
            meeting_expansion.class_index(cc) for cc in containing_discussant
        ]
        assert indices == [4, 7]

    def test_disjointness_prunes(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .disjoint("A", "B")
            .build()
        )
        expansion = Expansion(schema)
        members = {cc.members for cc in expansion.consistent_compound_classes()}
        assert members == {frozenset({"A"}), frozenset({"B"})}

    def test_covering_prunes(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .isa("B", "A")
            .relationship("R", U1="A", U2="A")
            .cover("A", "B")
            .build()
        )
        expansion = Expansion(schema)
        members = {cc.members for cc in expansion.consistent_compound_classes()}
        # {A} alone is inconsistent (A must be covered by B); {B} alone is
        # inconsistent (B <= A).
        assert members == {frozenset({"A", "B"})}


class TestCompoundRelationships:
    def test_figure4_counts(self, meeting_expansion):
        summary = meeting_expansion.size_summary()
        assert summary["all_compound_classes"] == 7
        assert summary["all_compound_relationships"] == 98
        assert summary["consistent_compound_classes"] == 5
        assert summary["consistent_compound_relationships"] == 18

    def test_figure4_consistent_index_pairs(self, meeting_expansion):
        pairs = {
            rel.rel: set()
            for rel in meeting_expansion.consistent_compound_relationships()
        }
        for rel in meeting_expansion.consistent_compound_relationships():
            indices = tuple(
                meeting_expansion.class_index(component)
                for _, component in rel.signature
            )
            pairs[rel.rel].add(indices)
        assert pairs["Holds"] == {
            (i, j) for i in (1, 4, 5, 7) for j in (3, 5, 7)
        }
        assert pairs["Participates"] == {
            (i, j) for i in (4, 7) for j in (3, 5, 7)
        }

    def test_is_consistent_relationship(self, meeting_expansion):
        holds = meeting_expansion.consistent_relationships_of("Holds")
        assert all(
            meeting_expansion.is_consistent_relationship(rel) for rel in holds
        )
        # A compound relationship whose role class misses the primary
        # class is inconsistent.
        from repro.cr.expansion import CompoundRelationship

        bad = CompoundRelationship(
            "Holds",
            (
                ("U1", compound("Talk")),  # does not contain Speaker
                ("U2", compound("Talk")),
            ),
        )
        assert not meeting_expansion.is_consistent_relationship(bad)

    def test_component_access(self, meeting_expansion):
        rel = meeting_expansion.consistent_relationships_of("Holds")[0]
        assert rel.component("U1").contains("Speaker")
        with pytest.raises(KeyError):
            rel.component("U9")


class TestLiftedCards:
    def test_figure4_lifted_values_holds_u1(self, meeting_expansion):
        # Figure 4: minc = 1 on C1, C4, C5, C7; maxc = 2 on C4 and C7.
        expected = {
            1: Card(1, UNBOUNDED),
            4: Card(1, 2),
            5: Card(1, UNBOUNDED),
            7: Card(1, 2),
        }
        for cc in meeting_expansion.consistent_classes_containing("Speaker"):
            index = meeting_expansion.class_index(cc)
            assert (
                meeting_expansion.lifted_card(cc, "Holds", "U1")
                == expected[index]
            )

    def test_figure4_lifted_values_participates(self, meeting_expansion):
        for cc in meeting_expansion.consistent_classes_containing("Discussant"):
            assert meeting_expansion.lifted_card(
                cc, "Participates", "U3"
            ) == Card(1, 1)
        for cc in meeting_expansion.consistent_classes_containing("Talk"):
            assert meeting_expansion.lifted_card(
                cc, "Participates", "U4"
            ) == Card(1, UNBOUNDED)

    def test_lifting_requires_primary_membership(self, meeting_expansion):
        with pytest.raises(ReproError):
            meeting_expansion.lifted_card(compound("Talk"), "Holds", "U1")

    def test_lifting_can_cross_bounds(self):
        # A (2, inf) refinement below a (0, 1) bound lifts to (2, 1):
        # contradictory, hence the compound class must be empty — the
        # lifting itself is still well-defined.
        schema = (
            SchemaBuilder()
            .classes("A", "B", "X")
            .isa("B", "A")
            .relationship("R", U1="A", U2="X")
            .card("A", "R", "U1", maxc=1)
            .card("B", "R", "U1", minc=2)
            .build()
        )
        expansion = Expansion(schema)
        lifted = expansion.lifted_card(compound("A", "B"), "R", "U1")
        assert lifted == Card(2, 1)


class TestLimits:
    def test_consistent_class_limit_enforced(self):
        builder = SchemaBuilder().classes(*[f"K{i}" for i in range(8)])
        builder.relationship("R", U1="K0", U2="K1")
        limits = ExpansionLimits(max_consistent_compound_classes=10)
        with pytest.raises(ReproError, match="disjointness"):
            Expansion(builder.build(), limits)

    def test_relationship_limit_enforced(self):
        builder = SchemaBuilder().classes(*[f"K{i}" for i in range(6)])
        builder.relationship("R", U1="K0", U2="K1")
        limits = ExpansionLimits(max_consistent_compound_relationships=10)
        with pytest.raises(ReproError, match="compound relationships"):
            Expansion(builder.build(), limits)

    def test_all_compound_classes_limit(self):
        builder = SchemaBuilder().classes(*[f"K{i}" for i in range(8)])
        builder.relationship("R", U1="K0", U2="K1")
        limits = ExpansionLimits(max_all_compound_classes=100)
        expansion = Expansion(builder.build(), limits)
        with pytest.raises(ReproError):
            list(expansion.all_compound_classes())
