"""Unit tests for verified unsatisfiability explanations."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.explain import explain_unsatisfiability
from repro.cr.satisfiability import satisfiable_classes
from repro.errors import ReproError
from repro.paper import figure1_schema, refined_meeting_schema


def layered_schema():
    """A is unsatisfiable only through acceptability: B dies from Q's
    contradictory bounds, R's tuples are unbounded in Psi, so the
    relaxation is feasible."""
    return (
        SchemaBuilder()
        .classes("A", "B")
        .relationship("R", U1="A", U2="B")
        .card("A", "R", "U1", minc=1)
        .relationship("Q", V1="B", V2="A")
        .card("B", "Q", "V1", minc=3, maxc=2)
        .build()
    )


class TestDirectExplanations:
    def test_figure1_is_direct(self, figure1):
        explanation = explain_unsatisfiability(figure1, "D")
        assert explanation.kind == "direct"
        assert explanation.verify()

    def test_figure1_proof_uses_both_cardinalities(self, figure1):
        explanation = explain_unsatisfiability(figure1, "C")
        labels = {
            explanation.direct_system.constraints[index].label
            for index, _ in explanation.direct_certificate.weights
        }
        assert any(label.startswith("min:R") for label in labels)
        assert any(label.startswith("max:R") for label in labels)
        assert any(label.startswith("positivity") for label in labels)

    def test_refined_meeting_is_direct(self, refined_meeting):
        explanation = explain_unsatisfiability(refined_meeting, "Speaker")
        assert explanation.kind == "direct"
        assert explanation.verify()
        assert "admits no finite population" in explanation.pretty()

    def test_pretty_contains_the_combination(self, figure1):
        explanation = explain_unsatisfiability(figure1, "D")
        assert "Farkas combination" in explanation.pretty()


class TestLayeredExplanations:
    def test_layered_case_detected(self):
        schema = layered_schema()
        assert satisfiable_classes(schema) == {"A": False, "B": False}
        explanation = explain_unsatisfiability(schema, "A")
        assert explanation.kind == "layered"
        assert explanation.verify()

    def test_layers_cover_the_targets(self):
        explanation = explain_unsatisfiability(layered_schema(), "A")
        proven = set()
        for layer in explanation.layers:
            proven.update(p.unknown for p in layer.zero_proofs)
        assert set(explanation.target_unknowns) <= proven

    def test_acceptability_steps_name_their_dependency(self):
        explanation = explain_unsatisfiability(layered_schema(), "A")
        forced = [
            f for layer in explanation.layers for f in layer.forced_relationships
        ]
        assert forced
        zeroed_classes = {
            p.unknown for layer in explanation.layers for p in layer.zero_proofs
        }
        for f in forced:
            assert f.zero_dependency in zeroed_classes

    def test_layered_pretty_mentions_acceptability(self):
        explanation = explain_unsatisfiability(layered_schema(), "A")
        assert "by acceptability" in explanation.pretty()
        assert "layer 2" in explanation.pretty()


class TestErrors:
    def test_satisfiable_class_raises(self, meeting):
        with pytest.raises(ReproError, match="nothing to explain"):
            explain_unsatisfiability(meeting, "Speaker")

    def test_unknown_class_raises(self, meeting):
        with pytest.raises(Exception):
            explain_unsatisfiability(meeting, "Ghost")


class TestAgreementWithReasoner:
    @pytest.mark.parametrize(
        "schema_factory,cls",
        [
            (figure1_schema, "C"),
            (figure1_schema, "D"),
            (refined_meeting_schema, "Speaker"),
            (refined_meeting_schema, "Talk"),
            (layered_schema, "A"),
            (layered_schema, "B"),
        ],
    )
    def test_every_unsat_verdict_is_explainable(self, schema_factory, cls):
        schema = schema_factory()
        assert not satisfiable_classes(schema)[cls]
        explanation = explain_unsatisfiability(schema, cls)
        assert explanation.verify()
