"""Unit tests for model construction (Theorem 3.3's constructive half)."""

from __future__ import annotations


import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.checker import check_expansion_model, check_model
from repro.cr.construction import (
    _capacity,
    _distinct_balanced_tuples,
    construct_model,
    construct_model_for_result,
)
from repro.cr.expansion import CompoundRelationship, Expansion
from repro.cr.satisfiability import is_class_satisfiable
from repro.cr.system import build_system
from repro.errors import ReproError


class TestMeetingModel:
    def test_constructed_model_satisfies_the_schema(self, meeting):
        result = is_class_satisfiable(meeting, "Speaker")
        model = construct_model_for_result(result)
        assert check_model(meeting, model) == []

    def test_constructed_model_satisfies_the_expansion_conditions(
        self, meeting, meeting_expansion
    ):
        result = is_class_satisfiable(meeting, "Speaker")
        model = construct_model_for_result(result)
        assert check_expansion_model(meeting_expansion, model) == []

    def test_model_populates_requested_class(self, meeting):
        for cls in ("Speaker", "Discussant", "Talk"):
            model = construct_model_for_result(
                is_class_satisfiable(meeting, cls)
            )
            assert model.instances_of(cls)

    def test_figure6_solution_reproduces_paper_model_shape(
        self, meeting, meeting_system
    ):
        # Figure 6's solution: c3 = c4 = 2, h34 = p34 = 2, rest 0 — two
        # discussant-speakers, two talks, as in the John/Mary model.
        solution = {name: 0 for name in meeting_system.system.variables}
        solution.update({"c3": 2, "c4": 2, "h43": 2, "p43": 2})
        model = construct_model(meeting_system, solution)
        assert check_model(meeting, model) == []
        assert len(model.instances_of("Speaker")) == 2
        assert len(model.instances_of("Discussant")) == 2
        assert len(model.instances_of("Talk")) == 2
        assert len(model.tuples_of("Holds")) == 2
        assert len(model.tuples_of("Participates")) == 2

    def test_unsatisfiable_result_raises(self, refined_meeting):
        result = is_class_satisfiable(refined_meeting, "Speaker")
        with pytest.raises(ReproError):
            construct_model_for_result(result)


class TestSolutionValidation:
    def test_non_solution_rejected(self, meeting_system):
        bogus = {name: 0 for name in meeting_system.system.variables}
        bogus["c4"] = 1  # one discussant with no Holds tuple: minc broken
        with pytest.raises(ReproError, match="does not solve"):
            construct_model(meeting_system, bogus)

    def test_unacceptable_solution_rejected(self):
        # B is empty but an R-tuple class pair involving B is positive.
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .build()
        )
        cr_system = build_system(Expansion(schema), mode="pruned")
        a_var = next(
            name
            for cc, name in cr_system.class_var.items()
            if cc.members == frozenset({"A"})
        )
        rel_var = next(
            name
            for cr, name in cr_system.rel_var.items()
            if cr.component("U1").members == frozenset({"A"})
            and cr.component("U2").members == frozenset({"B"})
        )
        solution = {name: 0 for name in cr_system.system.variables}
        solution[a_var] = 1
        solution[rel_var] = 1
        with pytest.raises(ReproError, match="not acceptable"):
            construct_model(cr_system, solution)

    def test_negative_counts_rejected(self, meeting_system):
        solution = {name: 0 for name in meeting_system.system.variables}
        solution["c3"] = -1
        with pytest.raises(ReproError, match="negative"):
            construct_model(meeting_system, solution)


class TestTupleDistribution:
    """The distinct-balanced tuple generator in isolation."""

    @staticmethod
    def _make_rel(counts):
        from repro.cr.expansion import CompoundClass

        signature = tuple(
            (f"U{i}", CompoundClass(frozenset({f"K{i}"})))
            for i in range(len(counts))
        )
        return CompoundRelationship("R", signature)

    @pytest.mark.parametrize(
        "counts,n",
        [
            ([2, 2], 4),
            ([2, 3], 6),
            ([4, 6], 24),
            ([1, 5], 5),
            ([3, 3, 3], 9),
            ([2, 3, 4], 12),
            ([5, 5], 17),
            ([6, 4, 2], 13),
        ],
    )
    def test_distinct_and_balanced(self, counts, n):
        rel = self._make_rel(counts)
        offsets = [0] * len(counts)
        tuples = _distinct_balanced_tuples(rel, n, counts, offsets)
        assert len(tuples) == n
        assert len(set(tuples)) == n
        for coordinate, count in enumerate(counts):
            histogram = [0] * count
            for combination in tuples:
                histogram[combination[coordinate]] += 1
            assert max(histogram) - min(histogram) <= 1

    @pytest.mark.parametrize("offset", [0, 1, 3, 7])
    def test_offsets_produce_window_multisets(self, offset):
        # With an offset, the slot multiset on each coordinate must be
        # the contiguous-window multiset starting at the offset.
        counts = [4, 6]
        n = 9
        rel = self._make_rel(counts)
        tuples = _distinct_balanced_tuples(rel, n, counts, [offset, 0])
        histogram = [0] * counts[0]
        for combination in tuples:
            histogram[combination[0]] += 1
        expected = [n // counts[0]] * counts[0]
        for j in range(n % counts[0]):
            expected[(offset + j) % counts[0]] += 1
        assert histogram == expected

    def test_capacity_formula(self):
        # Best pivot for [4, 6]: lcm(4)*6 = 24 = lcm(6)*4.
        assert _capacity([4, 6]) == 24
        # For [2, 3, 4]: pivots give lcm(3,4)*2=24, lcm(2,4)*3=12,
        # lcm(2,3)*4=24 — best 24.
        assert _capacity([2, 3, 4]) == 24
        assert _capacity([1, 1]) == 1


class TestScaling:
    def test_tight_equalities_force_scaling(self):
        # Every A holds exactly 2 R-links and every B receives exactly 2:
        # the minimal solution a=1, b=1, r=2 exceeds the 1x1 grid, so
        # construction must scale it and still satisfy the schema.
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=2, maxc=2)
            .card("B", "R", "U2", minc=2, maxc=2)
            .build()
        )
        result = is_class_satisfiable(schema, "A")
        assert result.satisfiable
        model = construct_model_for_result(result)
        assert check_model(schema, model) == []
        # Each instance participates exactly twice.
        for individual in model.instances_of("A"):
            assert model.participation_count("R", "U1", individual) == 2

    def test_self_relationship(self):
        # Both roles on the same class: every A manages exactly one A and
        # is managed by exactly one A.
        schema = (
            SchemaBuilder()
            .classes("A")
            .relationship("Manages", boss="A", sub="A")
            .card("A", "Manages", "boss", minc=1, maxc=1)
            .card("A", "Manages", "sub", minc=1, maxc=1)
            .build()
        )
        result = is_class_satisfiable(schema, "A")
        model = construct_model_for_result(result)
        assert check_model(schema, model) == []

    def test_ternary_relationship(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B", "C")
            .relationship("R", U1="A", U2="B", U3="C")
            .card("A", "R", "U1", minc=2, maxc=2)
            .card("B", "R", "U2", minc=1, maxc=1)
            .card("C", "R", "U3", minc=1, maxc=3)
            .build()
        )
        result = is_class_satisfiable(schema, "A")
        assert result.satisfiable
        model = construct_model_for_result(result)
        assert check_model(schema, model) == []
