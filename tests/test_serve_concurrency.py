"""Concurrency soak for the serve daemon: shared state under fire.

The daemon multiplexes every request over ONE process-wide cache and
ONE persistent store, so the hazards worth testing are exactly the
shared-state ones:

* **torn adoption** — N clients hammering overlapping schema
  fingerprints must each get the full, correct record set; a half-built
  entry must never be observable (the per-fingerprint lock plus the
  staged cache build make this hold);
* **counter monotonicity** — ``/metrics`` sampled *during* the storm
  must never show any counter going backwards (the lost-update race
  that plain ``+=`` would introduce is the thing the ``bump`` funnel
  and the locked stats subclasses exist to kill);
* **store faults mid-request** — a scripted crash inside the store's
  atomic-write protocol (the global :mod:`repro.runtime.faults` hook
  reaches the in-process server's threads) must degrade to
  rebuild-and-answer: the response is a normal 200 with the same bytes
  a fault-free run produces, never a 500 carrying partial output;
* **saturation** — past ``max_inflight`` the daemon answers 503 +
  ``Retry-After`` immediately instead of queueing unboundedly, and the
  in-flight gauge returns to zero afterwards.

Everything here runs the server in-process (:func:`running_server`),
which is what lets tests hold engine locks and install fault hooks the
served requests actually hit.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.cli import parse_batch_query
from repro.dsl import parse_schema
from repro.parallel.worker import answer_query
from repro.runtime.faults import inject_faults
from repro.serve import ServeClient, ServeConfig, running_server
from repro.session import ReasoningSession

CLIENTS = 8
ROUNDS = 3

SCHEMA_TEXTS = {
    "Duo": """schema Duo {
  class A;
  class B isa A;
  relationship R(U1: A, U2: B);
  cardinality A in R.U1: (1, 2);
  cardinality B in R.U2: (1, 1);
}""",
    "Trio": """schema Trio {
  class A;
  class B isa A;
  class C isa B;
  relationship R(U1: A, U2: C);
  cardinality C in R.U2: (1, 1);
  cardinality A in R.U1: (0, 1);
}""",
    "Tight": """schema Tight {
  class A;
  class B isa A;
  relationship R(U1: A, U2: B);
  cardinality A in R.U1: (2, 2);
  cardinality B in R.U2: (1, 1);
}""",
}

QUERY_LINES = ["sat A", "sat B", "B isa A", "A isa B", "disjoint(A, B)",
               "maxc(A, R, U1) = 3", "minc(B, R, U1) = 1"]


def serial_records(text: str) -> list[dict]:
    """The oracle: one cold session through the shared formatter."""
    session = ReasoningSession(parse_schema(text))
    return [
        answer_query(session, kind, payload)[0]
        for kind, payload in map(parse_batch_query, QUERY_LINES)
    ]


@pytest.fixture(scope="module")
def expected():
    return {name: serial_records(text) for name, text in SCHEMA_TEXTS.items()}


def test_overlapping_fingerprints_concurrent_parity(expected):
    """8 clients × 3 rounds × 3 schemas, all interleaved: every response
    must carry the complete serial record set — cold builds, warm hits,
    and store adoptions all racing on the same fingerprints."""
    with running_server(ServeConfig(max_inflight=CLIENTS)) as server:
        def storm(client_index: int) -> list[tuple[str, int, list]]:
            client = ServeClient(server.base_url)
            out = []
            for round_index in range(ROUNDS):
                # Rotate the starting schema per client so cold builds,
                # warm hits, and lock waits genuinely overlap.
                names = list(SCHEMA_TEXTS)
                names = names[client_index % len(names):] + names[: client_index % len(names)]
                for name in names:
                    status, payload = client.batch(
                        SCHEMA_TEXTS[name], QUERY_LINES
                    )
                    out.append((name, status, payload["results"]))
            return out

        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            all_answers = [
                answer
                for answers in pool.map(storm, range(CLIENTS))
                for answer in answers
            ]
        _, metrics = ServeClient(server.base_url).metrics()

    assert len(all_answers) == CLIENTS * ROUNDS * len(SCHEMA_TEXTS)
    for name, status, results in all_answers:
        assert status == 200
        assert results == expected[name], f"torn/partial answer for {name}"
    assert metrics["server"]["in_flight"] == 0
    assert metrics["server"]["requests_by_endpoint"]["/batch"] == len(all_answers)
    # Per-fingerprint serialization means each entry built at most once:
    # one fixpoint per base schema plus one per cardinality query's
    # Section-4 extended schema — never once per request.
    card_queries = sum(
        1 for line in QUERY_LINES if line.startswith(("minc", "maxc"))
    )
    assert 0 < metrics["cache"]["fixpoint_runs"] <= len(SCHEMA_TEXTS) * (
        1 + card_queries
    )


MONOTONE_KEYS = (
    ("server", "requests_total"),
    ("cache", "hits"),
    ("cache", "misses"),
    ("cache", "analysis_runs"),
    ("cache", "expansion_builds"),
    ("cache", "fixpoint_runs"),
    ("store", "hits"),
    ("store", "misses"),
    ("store", "writes"),
)


def test_metrics_counters_stay_monotone_under_load(tmp_path, expected):
    """Sample ``/metrics`` continuously while clients hammer the daemon;
    no sampled counter may ever be smaller than the previous sample."""
    config = ServeConfig(
        cache_dir=str(tmp_path / "store"), max_inflight=CLIENTS
    )
    with running_server(config) as server:
        stop_sampling = threading.Event()
        samples: list[dict] = []

        def sample() -> None:
            client = ServeClient(server.base_url)
            while not stop_sampling.is_set():
                _, payload = client.metrics()
                samples.append(payload)

        def hammer(client_index: int) -> None:
            client = ServeClient(server.base_url)
            for _ in range(ROUNDS):
                for name, text in SCHEMA_TEXTS.items():
                    status, payload = client.batch(text, QUERY_LINES)
                    assert status == 200
                    assert payload["results"] == expected[name]

        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            list(pool.map(hammer, range(CLIENTS)))
        stop_sampling.set()
        sampler.join(30.0)
        _, final = ServeClient(server.base_url).metrics()
    samples.append(final)

    assert len(samples) >= 2
    for section, key in MONOTONE_KEYS:
        values = [sample[section][key] for sample in samples]
        assert values == sorted(values), f"{section}.{key} went backwards: {values}"
    stage_runs = [
        sum(timing["runs"] for timing in sample["stages"].values())
        for sample in samples
    ]
    assert stage_runs == sorted(stage_runs)
    assert final["server"]["in_flight"] == 0
    # The persistent tier genuinely participated.
    assert final["store"]["writes"] > 0


@pytest.mark.parametrize(
    "crash_point",
    ["store:write:start", "store:write:torn", "store:write:pre-rename"],
)
def test_store_crash_mid_request_degrades_to_rebuild_and_answer(
    tmp_path, expected, crash_point
):
    """A simulated crash inside the first persistence attempt unwinds
    through the request, the engine retries against the (warm, fully
    consistent) in-memory entry, and every client — including the ones
    that raced the crashing request — gets the fault-free bytes."""
    config = ServeConfig(
        cache_dir=str(tmp_path / "store"), max_inflight=CLIENTS
    )
    with running_server(config) as server:
        with inject_faults(disk_failures={crash_point: {1}}) as plan:
            def one(client_index: int):
                client = ServeClient(server.base_url)
                return client.batch(SCHEMA_TEXTS["Duo"], QUERY_LINES)

            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                answers = list(pool.map(one, range(CLIENTS)))
        _, metrics = ServeClient(server.base_url).metrics()

    assert plan.injected == [(crash_point, 1)]
    for status, payload in answers:
        assert status == 200, payload
        assert payload["results"] == expected["Duo"]
        assert payload["exit_code"] in (0, 1)
    assert metrics["server"]["retries"] >= 1
    assert metrics["server"]["responses_by_status"].get("500") is None


def test_corrupted_store_entry_quarantined_on_restart(tmp_path, expected):
    """Silent bit-rot on the first daemon's write is caught by the
    second daemon's checksum verification: the damaged entry is
    quarantined and rebuilt from source — answers unchanged."""
    store_dir = str(tmp_path / "store")
    with inject_faults(disk_corruptions={"store:put:encoded": {1}}) as plan:
        with running_server(ServeConfig(cache_dir=store_dir)) as first:
            status, payload = ServeClient(first.base_url).batch(
                SCHEMA_TEXTS["Duo"], QUERY_LINES
            )
            assert status == 200
            assert payload["results"] == expected["Duo"]
    assert plan.corrupted == [("store:put:encoded", 1)]

    with running_server(ServeConfig(cache_dir=store_dir)) as second:
        client = ServeClient(second.base_url)
        status, payload = client.batch(SCHEMA_TEXTS["Duo"], QUERY_LINES)
        _, metrics = client.metrics()
    assert status == 200
    assert payload["results"] == expected["Duo"]
    assert metrics["store"]["quarantined"] >= 1


def test_saturation_answers_503_with_retry_after(expected):
    """Hold the engine's fingerprint lock from the test thread so the
    single permitted request parks deterministically; the next request
    must bounce with 503 + Retry-After instead of queueing."""
    import time

    from repro.session.fingerprint import schema_fingerprint

    text = SCHEMA_TEXTS["Duo"]
    fingerprint = schema_fingerprint(parse_schema(text))
    with running_server(ServeConfig(max_inflight=1)) as server:
        lock = server.engine.fingerprint_lock(fingerprint)
        results: dict[str, tuple] = {}
        with lock:
            blocked = threading.Thread(
                target=lambda: results.__setitem__(
                    "first", ServeClient(server.base_url).batch(text, QUERY_LINES)
                )
            )
            blocked.start()
            client = ServeClient(server.base_url)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                _, metrics = client.metrics()
                if metrics["server"]["in_flight"] == 1:
                    break
            else:
                pytest.fail("first request never reached the engine")
            status, payload, headers = client.request(
                "POST", "/batch", {"schema": text, "queries": QUERY_LINES}
            )
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert "error" in payload
        blocked.join(30.0)
        status, payload = results["first"]
        assert status == 200
        assert payload["results"] == expected["Duo"]
        _, metrics = client.metrics()
    assert metrics["server"]["rejected_busy"] >= 1
    assert metrics["server"]["in_flight"] == 0
