"""Differential harness: the serve daemon versus ``batch --json``.

The daemon's contract is that serving adds *nothing observable* to the
reasoning: for any schema and any query mix, the records coming back
over HTTP are byte-identical to the records ``repro batch --json``
prints for the same inputs — same verdicts, same ``unknown_reason``
strings, same ordering, same exit-code semantics (carried as
``exit_code`` in the response body).  Both paths share one formatter
(:func:`repro.parallel.worker.answer_query`), and these properties
pin that sharing down from the outside:

* random schemas and mixed query batches (from the same
  :func:`tests.strategies.query_mixes` generator the parallel parity
  suite uses) through a live in-process server and through the CLI;
* budget-capped requests whose queries exhaust mid-pipeline and
  degrade to UNKNOWN records with ``exit_code`` 3 — compared cold
  against cold, because exhaustion is a property of cold builds (a
  warm entry answers without spending budget, on either path);
* a warm second daemon adopting the first daemon's persisted store
  entries, still answering byte-for-byte what a cold CLI run answers.

The only tolerated difference is the wall-clock figure embedded in
exhaustion reasons (``after 0.004s``) — physical time, not reasoning
output — which :func:`scrub_elapsed` canonicalises on both sides.
"""

from __future__ import annotations

import contextlib
import io
import json
import re
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.dsl import serialize_schema
from repro.serve import ServeClient, ServeConfig, running_server

from tests.strategies import query_lines, query_mixes, schemas

SERVED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_ELAPSED = re.compile(r"after \d+(?:\.\d+)?s")


def scrub_elapsed(records: list[dict]) -> list[dict]:
    """Canonicalise the wall-clock token inside exhaustion reasons."""
    scrubbed = []
    for record in records:
        reason = record.get("unknown_reason")
        if isinstance(reason, str):
            record = {**record, "unknown_reason": _ELAPSED.sub("after <t>s", reason)}
        scrubbed.append(record)
    return scrubbed


def as_bytes(records: list[dict]) -> str:
    """The byte-level comparison key: full JSON serialisation."""
    return json.dumps(records, sort_keys=True)


def run_cli_batch(
    schema_text: str, lines: list[str], extra_args: tuple[str, ...] = ()
) -> tuple[dict, int]:
    """``repro batch --json`` in-process: the exact CLI code path,
    without paying a subprocess per Hypothesis example."""
    with tempfile.TemporaryDirectory() as tmp:
        schema_path = Path(tmp) / "schema.cr"
        schema_path.write_text(schema_text)
        queries_path = Path(tmp) / "queries.txt"
        queries_path.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = cli_main(
                ["batch", str(schema_path), str(queries_path), "--json", *extra_args]
            )
        return json.loads(out.getvalue()), code


@pytest.fixture(scope="module")
def server():
    """One long-lived daemon shared by every example in this module —
    deliberately *warm*: without budgets, a warm answer must equal a
    cold one, so reusing the server is itself part of the property."""
    with running_server(ServeConfig()) as srv:
        yield srv


@SERVED
@given(data=st.data())
def test_random_query_mixes_match_batch_json(server, data):
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    queries = data.draw(query_mixes(schema))
    lines = query_lines(queries)
    text = serialize_schema(schema)

    report, cli_code = run_cli_batch(text, lines)
    client = ServeClient(server.base_url)
    status, payload = client.batch(text, lines)

    assert status == 200
    assert as_bytes(payload["results"]) == as_bytes(report["results"])
    assert payload["fingerprint"] == report["fingerprint"]
    assert payload["exit_code"] == cli_code


@SERVED
@given(data=st.data())
def test_check_and_implies_match_their_batch_records(server, data):
    """The single-query endpoints are one-line batches: same records."""
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    queries = data.draw(query_mixes(schema, max_size=1))
    (kind, query_payload), = queries
    line = query_lines(queries)[0]
    text = serialize_schema(schema)

    report, cli_code = run_cli_batch(text, [line])
    client = ServeClient(server.base_url)
    if kind == "sat":
        status, payload = client.check(text, query_payload)
    else:
        status, payload = client.implies(text, query_payload.pretty())

    assert status == 200
    assert as_bytes(payload["results"]) == as_bytes(report["results"])
    assert payload["exit_code"] == cli_code


@SERVED
@given(data=st.data())
def test_budget_exhaustion_parity_cold_vs_cold(data):
    """A deterministic LP cap exhausts mid-pipeline identically on both
    paths: same UNKNOWN records (modulo the embedded wall-clock token),
    same exit-3 semantics.  Fresh daemon per example — exhaustion is a
    cold-build phenomenon and a warm entry would (correctly) answer
    without spending budget at all."""
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    queries = data.draw(query_mixes(schema))
    lines = query_lines(queries)
    cap = data.draw(st.integers(min_value=1, max_value=3))
    text = serialize_schema(schema)

    report, cli_code = run_cli_batch(text, lines, ("--max-lp", str(cap)))
    with running_server(ServeConfig()) as fresh:
        status, payload = ServeClient(fresh.base_url).batch(
            text, lines, budget={"max_lp": cap}
        )

    assert status == 200
    assert as_bytes(scrub_elapsed(payload["results"])) == as_bytes(
        scrub_elapsed(report["results"])
    )
    assert payload["exit_code"] == cli_code
    if any(r["verdict"] == "unknown" for r in payload["results"]):
        assert payload["exit_code"] == 3


@SERVED
@given(data=st.data())
def test_warm_store_adoption_matches_cold_cli(data):
    """Daemon #2 adopts daemon #1's persisted artifacts and still
    answers exactly what a cold, store-less CLI run answers."""
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    queries = data.draw(query_mixes(schema, max_size=3))
    lines = query_lines(queries)
    text = serialize_schema(schema)
    report, cli_code = run_cli_batch(text, lines)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = str(Path(tmp) / "store")
        with running_server(ServeConfig(cache_dir=store_dir)) as first:
            status1, cold = ServeClient(first.base_url).batch(text, lines)
        with running_server(ServeConfig(cache_dir=store_dir)) as second:
            client = ServeClient(second.base_url)
            status2, warm = client.batch(text, lines)
            _, metrics = client.metrics()

    assert status1 == status2 == 200
    assert as_bytes(cold["results"]) == as_bytes(report["results"])
    assert as_bytes(warm["results"]) == as_bytes(report["results"])
    assert cold["exit_code"] == warm["exit_code"] == cli_code
    # The second daemon really did adopt from the store rather than
    # rebuild — unless the analyzer short-circuited the whole pipeline,
    # in which case nothing was persisted (nothing was built).
    stats = metrics["cache"]
    if cold["results"] and metrics["store"]["hits"] == 0:
        assert stats["analysis_short_circuits"] > 0 or stats["expansion_builds"] == 0


def test_bad_schema_is_http_400_and_cli_exit_2(server):
    text = "this is not a schema"
    client = ServeClient(server.base_url)
    status, payload = client.batch(text, ["sat A"])
    assert status == 400
    assert "error" in payload

    with tempfile.TemporaryDirectory() as tmp:
        schema_path = Path(tmp) / "bad.cr"
        schema_path.write_text(text)
        queries_path = Path(tmp) / "q.txt"
        queries_path.write_text("sat A\n")
        with contextlib.redirect_stdout(io.StringIO()):
            with contextlib.redirect_stderr(io.StringIO()):
                code = cli_main(
                    ["batch", str(schema_path), str(queries_path), "--json"]
                )
    assert code == 2


def test_bad_query_and_bad_budget_are_http_400(server):
    from repro.paper import meeting_schema

    text = serialize_schema(meeting_schema())
    client = ServeClient(server.base_url)
    status, payload = client.batch(text, ["frobnicate Speaker"])
    assert status == 400 and "error" in payload
    status, payload = client.batch(text, ["sat Speaker"], budget={"max_warp": 9})
    assert status == 400 and "error" in payload
    status, payload = client.batch(text, ["sat Speaker"], budget={"max_lp": "many"})
    assert status == 400 and "error" in payload
