"""Unit tests for the Lenzerini–Nobili baseline (ISA-free reasoning)."""

from __future__ import annotations

import pytest

from repro.cr.baseline import (
    baseline_satisfiable_classes,
    baseline_witness,
    lenzerini_nobili_system,
)
from repro.cr.builder import SchemaBuilder
from repro.cr.satisfiability import satisfiable_classes
from repro.errors import SchemaError


def isa_free_schema(min_a: int = 1, max_b: int | None = None):
    builder = (
        SchemaBuilder("Flat")
        .classes("A", "B")
        .relationship("R", U1="A", U2="B")
        .card("A", "R", "U1", minc=min_a)
    )
    if max_b is not None:
        builder.card("B", "R", "U2", maxc=max_b)
    return builder.build()


class TestSystemConstruction:
    def test_one_unknown_per_symbol(self):
        baseline = lenzerini_nobili_system(isa_free_schema())
        assert set(baseline.class_var) == {"A", "B"}
        assert set(baseline.rel_var) == {"R"}

    def test_rejects_isa(self, meeting):
        with pytest.raises(SchemaError, match="no ISA"):
            lenzerini_nobili_system(meeting)

    def test_rejects_extensions(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .disjoint("A", "B")
            .build()
        )
        with pytest.raises(SchemaError, match="predates"):
            lenzerini_nobili_system(schema)

    def test_disequations_have_expected_labels(self):
        baseline = lenzerini_nobili_system(isa_free_schema(2, 3))
        labels = {c.label for c in baseline.system}
        assert "min:R:U1" in labels
        assert "max:R:U2" in labels


class TestBaselineSatisfiability:
    def test_satisfiable_flat_schema(self):
        verdicts = baseline_satisfiable_classes(isa_free_schema())
        assert verdicts == {"A": True, "B": True}

    def test_unsatisfiable_flat_schema(self):
        # Every A needs 2 R-links, every B admits at most 1, and B
        # reciprocally requires A to absorb 3 links each... a ratio
        # conflict with no solution: 2|A| <= |R| <= |B| and 3|B| <= |R|
        # combined with |R| <= |A| is impossible for nonzero counts.
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=2, maxc=2)
            .card("B", "R", "U2", minc=1, maxc=1)
            .relationship("Q", V1="B", V2="A")
            .card("B", "Q", "V1", minc=2, maxc=2)
            .card("A", "Q", "V2", minc=1, maxc=1)
            .build()
        )
        verdicts = baseline_satisfiable_classes(schema)
        assert verdicts == {"A": False, "B": False}

    def test_acceptability_matters_in_baseline_too(self):
        # B unpopulatable (minc > maxc on its own role), and every A
        # needs an R link: A dies through the dependency.
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=1)
            .card("B", "R", "U2", minc=3, maxc=2)
            .build()
        )
        verdicts = baseline_satisfiable_classes(schema)
        assert verdicts == {"A": False, "B": False}

    def test_witness_solves_the_system(self):
        schema = isa_free_schema(1, 2)
        baseline = lenzerini_nobili_system(schema)
        witness = baseline_witness(schema)
        from fractions import Fraction

        assignment = {
            name: Fraction(witness.get(name, 0))
            for name in baseline.system.variables
        }
        assert baseline.system.is_satisfied_by(assignment)
        assert witness[baseline.class_var["A"]] > 0


class TestAgreementWithFullProcedure:
    """On ISA-free schemas the paper's procedure must agree with [15]."""

    @pytest.mark.parametrize(
        "min_a,max_b",
        [(0, None), (1, None), (2, 1), (3, 3), (5, 1)],
    )
    def test_verdicts_agree(self, min_a, max_b):
        schema = isa_free_schema(min_a, max_b)
        assert baseline_satisfiable_classes(schema) == satisfiable_classes(
            schema
        )
