"""Shared fixtures: the paper's running examples."""

from __future__ import annotations

import pytest

from repro.cr.expansion import Expansion
from repro.cr.system import build_system
from repro.paper import (
    figure1_schema,
    meeting_schema,
    refined_meeting_schema,
)


@pytest.fixture(scope="session")
def meeting():
    """The CR-schema of Figure 3."""
    return meeting_schema()


@pytest.fixture(scope="session")
def meeting_expansion(meeting):
    """The expansion of Figure 4."""
    return Expansion(meeting)


@pytest.fixture(scope="session")
def meeting_system(meeting_expansion):
    """The pruned-mode disequation system of the meeting schema."""
    return build_system(meeting_expansion, mode="pruned")


@pytest.fixture(scope="session")
def meeting_literal_system(meeting_expansion):
    """The literal (Figure 5) disequation system of the meeting schema."""
    return build_system(meeting_expansion, mode="literal")


@pytest.fixture(scope="session")
def figure1():
    """The finitely unsatisfiable schema of Figure 1."""
    return figure1_schema()


@pytest.fixture(scope="session")
def refined_meeting():
    """The Section-3.3 unsatisfiable refinement of the meeting schema."""
    return refined_meeting_schema()
