"""Shared fixtures (the paper's running examples) and Hypothesis profiles.

Two profiles are registered:

* ``default`` — local runs; random seeds, no deadline (the fixpoint's
  LP solves make per-example timing too noisy for one).
* ``ci`` — deterministic (``derandomize=True``) so CI failures
  reproduce exactly; selected by exporting ``HYPOTHESIS_PROFILE=ci``.
  CI additionally shrinks the example budget of the oracle and
  metamorphic suites via ``REPRO_PROPERTY_MAX_EXAMPLES`` (read by
  :func:`tests.strategies.property_max_examples`).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.cr.expansion import Expansion
from repro.cr.system import build_system
from repro.paper import (
    figure1_schema,
    meeting_schema,
    refined_meeting_schema,
)

settings.register_profile("default", deadline=None)
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.filter_too_much,
        HealthCheck.data_too_large,
    ],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def meeting():
    """The CR-schema of Figure 3."""
    return meeting_schema()


@pytest.fixture(scope="session")
def meeting_expansion(meeting):
    """The expansion of Figure 4."""
    return Expansion(meeting)


@pytest.fixture(scope="session")
def meeting_system(meeting_expansion):
    """The pruned-mode disequation system of the meeting schema."""
    return build_system(meeting_expansion, mode="pruned")


@pytest.fixture(scope="session")
def meeting_literal_system(meeting_expansion):
    """The literal (Figure 5) disequation system of the meeting schema."""
    return build_system(meeting_expansion, mode="literal")


@pytest.fixture(scope="session")
def figure1():
    """The finitely unsatisfiable schema of Figure 1."""
    return figure1_schema()


@pytest.fixture(scope="session")
def refined_meeting():
    """The Section-3.3 unsatisfiable refinement of the meeting schema."""
    return refined_meeting_schema()
