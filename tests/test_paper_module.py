"""Unit tests for :mod:`repro.paper` (the ready-made running examples)."""

from __future__ import annotations

import pytest

from repro.cr.constraints import IsaStatement, MaxCardinalityStatement
from repro.cr.schema import Card, UNBOUNDED
from repro.er.to_cr import er_to_cr
from repro.paper import (
    figure1_er,
    figure1_schema,
    figure7_queries,
    meeting_er,
    meeting_schema,
    refined_meeting_schema,
)


class TestFigure1Factory:
    def test_default_ratio_is_the_paper_figure(self):
        schema = figure1_schema()
        assert schema.card("C", "R", "V1") == Card(2, UNBOUNDED)
        assert schema.card("D", "R", "V2") == Card(0, 1)
        assert schema.is_subclass("D", "C")

    @pytest.mark.parametrize("ratio", [1, 2, 7])
    def test_ratio_parameterisation(self, ratio):
        schema = figure1_schema(ratio)
        assert schema.card("C", "R", "V1").minc == ratio

    def test_er_and_schema_agree(self):
        assert er_to_cr(figure1_er(3)).declared_cards == (
            figure1_schema(3).declared_cards
        )


class TestMeetingFactories:
    def test_meeting_schema_matches_figure3(self):
        schema = meeting_schema()
        assert schema.classes == ("Speaker", "Discussant", "Talk")
        assert len(schema.declared_cards) == 5
        assert schema.card("Discussant", "Holds", "U1") == Card(0, 2)

    def test_er_route_is_equivalent(self):
        assert er_to_cr(meeting_er()).declared_cards == (
            meeting_schema().declared_cards
        )

    def test_refined_variant_strengthens_exactly_one_declaration(self):
        base = meeting_schema().declared_cards
        refined = refined_meeting_schema().declared_cards
        differing = {
            key
            for key in set(base) | set(refined)
            if base.get(key) != refined.get(key)
        }
        assert differing == {("Discussant", "Holds", "U1")}
        assert refined[("Discussant", "Holds", "U1")] == Card(2, 2)

    def test_factories_return_fresh_objects(self):
        assert meeting_schema() is not meeting_schema()


class TestFigure7Queries:
    def test_the_three_statements(self):
        queries = figure7_queries()
        assert queries[0] == IsaStatement("Speaker", "Discussant")
        assert queries[1] == MaxCardinalityStatement(
            "Talk", "Participates", "U4", 1
        )
        assert queries[2] == MaxCardinalityStatement(
            "Speaker", "Holds", "U1", 1
        )

    def test_queries_are_well_formed_for_the_schema(self):
        schema = meeting_schema()
        for query in figure7_queries():
            if isinstance(query, MaxCardinalityStatement):
                # The class must be a subclass of the role's primary.
                rel = schema.relationship(query.rel)
                assert schema.is_subclass(
                    query.cls, rel.primary_class(query.role)
                )
