"""Randomized parity evidence for the parallel decision fabric.

The determinism contract says nothing observable may depend on the
worker count: ``repro batch --jobs 2`` must produce the same records,
texts, and exit semantics as the serial session loop, and the fanned-out
verdict sweep must agree with the serial fixpoint on every class.
These properties drive random schemas and query batches from
:mod:`tests.strategies` through both paths and compare.

Example counts are deliberately tiny: every example pays a real
two-worker spawn-pool startup (each worker re-imports :mod:`repro`),
so the suite buys breadth per example, not example volume — the cheap
exhaustive checks live in ``test_parallel.py``.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cr.satisfiability import satisfiable_classes
from repro.parallel.fanout import run_parallel_batch
from repro.parallel.worker import answer_query
from repro.runtime.budget import Budget
from repro.session import ReasoningSession

from tests.strategies import query_mixes, schemas

POOLED = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

UNKNOWN_VERDICT = "unknown"


def serial_answers(schema, queries):
    """The serial oracle: one warm session, the same formatting path
    the workers use."""
    session = ReasoningSession(schema)
    return [answer_query(session, kind, query) for kind, query in queries]


@POOLED
@given(data=st.data())
def test_parallel_batch_matches_the_serial_session(data):
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    queries = data.draw(query_mixes(schema))
    expected = serial_answers(schema, queries)

    outcome = run_parallel_batch(schema, queries, jobs=2)

    assert outcome.records == [record for record, _, _, _ in expected]
    assert outcome.texts == [text for _, text, _, _ in expected]
    assert outcome.all_positive == all(
        positive for _, _, positive, _ in expected
    )
    assert outcome.any_unknown == any(
        unknown for _, _, _, unknown in expected
    )


@POOLED
@given(data=st.data())
def test_parallel_verdict_sweep_matches_the_serial_fixpoint(data):
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    assert satisfiable_classes(schema, jobs=2) == satisfiable_classes(schema)


@POOLED
@given(data=st.data())
def test_budget_faults_mid_batch_degrade_not_diverge(data):
    """Fault injection: a cap small enough that some worker exhausts it
    mid-chunk.  Every parallel record must either equal the un-budgeted
    serial answer or be an honest UNKNOWN — never a wrong verdict — and
    the exhaustion must be reflected in the exit semantics."""
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    queries = data.draw(query_mixes(schema))
    expected = serial_answers(schema, queries)
    cap = data.draw(st.integers(min_value=1, max_value=3))

    outcome = run_parallel_batch(
        schema, queries, jobs=2, budget=Budget(max_solver_calls=cap)
    )

    assert len(outcome.records) == len(queries)
    degraded = 0
    for record, (serial_record, _, _, serial_unknown) in zip(
        outcome.records, expected
    ):
        if record["verdict"] == UNKNOWN_VERDICT and not serial_unknown:
            degraded += 1
            assert record["query"] == serial_record["query"]
        else:
            assert record == serial_record
    if degraded:
        assert outcome.any_unknown
        assert not outcome.all_positive
