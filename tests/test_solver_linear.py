"""Unit tests for the linear expression/constraint AST."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solver.linear import LinearSystem, LinExpr, Relation, term


class TestLinExpr:
    def test_term_builds_single_variable(self):
        x = term("x")
        assert x.coefficients == {"x": 1}
        assert x.constant_term == 0

    def test_zero_coefficients_dropped(self):
        expr = term("x") - term("x")
        assert expr.is_constant()
        assert expr.coefficients == {}

    def test_arithmetic(self):
        x, y = term("x"), term("y")
        expr = 2 * x - y + 3
        assert expr.coefficient("x") == 2
        assert expr.coefficient("y") == -1
        assert expr.constant_term == 3

    def test_rsub_and_radd(self):
        x = term("x")
        assert (1 - x).coefficient("x") == -1
        assert (1 + x).constant_term == 1

    def test_division(self):
        assert (term("x") / 2).coefficient("x") == Fraction(1, 2)

    def test_evaluate(self):
        expr = 2 * term("x") + term("y") - 1
        assert expr.evaluate({"x": Fraction(2), "y": Fraction(3)}) == 6

    def test_variables_sorted(self):
        expr = term("b") + term("a")
        assert expr.variables() == ("a", "b")

    def test_equality_and_hash(self):
        assert term("x") + 1 == 1 + term("x")
        assert len({term("x"), term("x")}) == 1

    def test_pretty(self):
        assert (2 * term("x") - term("y")).pretty() == "2*x - y"
        assert LinExpr.constant(0).pretty() == "0"
        assert (term("x") - 3).pretty() == "x - 3"

    @given(st.integers(-5, 5), st.integers(-5, 5))
    def test_scalar_multiplication_distributes(self, a, b):
        x = term("x")
        assert (a + b) * x == a * x + b * x


class TestConstraint:
    def test_comparisons_build_constraints(self):
        x = term("x")
        assert (x <= 3).relation is Relation.LE
        assert (x >= 3).relation is Relation.GE
        assert (x < 3).relation is Relation.LT
        assert (x > 3).relation is Relation.GT
        assert x.equals(3).relation is Relation.EQ

    def test_normal_form_moves_rhs_left(self):
        constraint = term("x") <= term("y")
        assert constraint.expr == term("x") - term("y")

    def test_is_satisfied_by(self):
        x = term("x")
        assert (x <= 3).is_satisfied_by({"x": Fraction(3)})
        assert not (x < 3).is_satisfied_by({"x": Fraction(3)})
        assert (x > 0).is_satisfied_by({"x": Fraction(1, 10)})
        assert x.equals(3).is_satisfied_by({"x": Fraction(3)})

    def test_negated(self):
        assert (term("x") <= 3).negated().relation is Relation.GT
        with pytest.raises(SolverError):
            term("x").equals(3).negated()

    def test_non_strict_relaxation(self):
        assert (term("x") < 3).non_strict_relaxation().relation is Relation.LE
        assert (term("x") <= 3).non_strict_relaxation().relation is Relation.LE

    def test_homogeneity(self):
        assert (term("x") <= term("y")).is_homogeneous()
        assert not (term("x") <= 1).is_homogeneous()

    def test_pretty_moves_negatives_right(self):
        constraint = 2 * term("c") - term("h") <= 0
        assert constraint.pretty() == "2*c <= h"

    def test_labelled_copy(self):
        constraint = (term("x") <= 3).labelled("bound", origin="here")
        assert constraint.label == "bound"
        assert constraint.origin == "here"


class TestLinearSystem:
    def test_variables_accumulate_in_order(self):
        system = LinearSystem([term("b") <= 1], variables=["a"])
        system.add(term("c") >= 0)
        assert system.variables == ("a", "b", "c")

    def test_declare_without_constraint(self):
        system = LinearSystem()
        system.declare("lonely")
        assert system.variables == ("lonely",)

    def test_homogeneous_detection(self):
        assert LinearSystem([term("x") <= term("y")]).is_homogeneous()
        assert not LinearSystem([term("x") <= 1]).is_homogeneous()

    def test_strictness_detection(self):
        assert LinearSystem([term("x") > 0]).has_strict_constraints()
        assert not LinearSystem([term("x") >= 0]).has_strict_constraints()

    def test_satisfaction_and_violations(self):
        system = LinearSystem([term("x") <= 1, term("x") >= 0])
        assert system.is_satisfied_by({"x": Fraction(1)})
        violated = system.violated_constraints({"x": Fraction(2)})
        assert len(violated) == 1

    def test_with_constraints_copies(self):
        base = LinearSystem([term("x") >= 0])
        extended = base.with_constraints([term("x") <= 1])
        assert len(base) == 1
        assert len(extended) == 2

    def test_restricted_to_labels(self):
        system = LinearSystem(
            [
                (term("x") >= 0).labelled("keep"),
                (term("x") <= 1).labelled("drop"),
            ]
        )
        restricted = system.restricted_to(["keep"])
        assert len(restricted) == 1
        assert restricted.constraints[0].label == "keep"

    def test_pretty_one_line_per_constraint(self):
        system = LinearSystem([term("x") >= 0, term("x") <= 1])
        assert len(system.pretty().splitlines()) == 2
