"""The persistent tier end to end: two-tier :class:`SessionCache`,
``repro batch --cache-dir`` warm-equals-cold byte identity (serial and
``--jobs 2``), and the ``repro cache`` maintenance subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.dsl import serialize_schema
from repro.paper import meeting_schema
from repro.session import ReasoningSession, SessionCache
from repro.store import ArtifactStore

QUERIES = [
    "sat Speaker",
    "sat Talk",
    "Speaker isa Discussant",
    "maxc(Speaker, Holds, U1) = 2",
]


@pytest.fixture
def meeting_file(tmp_path):
    path = tmp_path / "meeting.cr"
    path.write_text(serialize_schema(meeting_schema()))
    return str(path)


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def batch(meeting_file, capsys, *extra):
    args = ["batch", meeting_file]
    for query in QUERIES:
        args += ["--query", query]
    code = main(args + list(extra))
    return code, capsys.readouterr().out


# ---------------------------------------------------------------------------
# The two-tier SessionCache
# ---------------------------------------------------------------------------


class TestTwoTierCache:
    def test_warm_entry_writes_through(self, meeting, cache_dir):
        cache = SessionCache(store=ArtifactStore(cache_dir))
        session = ReasoningSession(meeting, cache=cache)
        assert session.is_class_satisfiable("Speaker").satisfiable
        stats = session.stats
        assert stats.store_misses == 1  # the cold lookup
        assert stats.store_writes == 1  # the fixpoint's completion
        assert stats.fixpoint_runs == 1

    def test_second_process_starts_warm(self, meeting, cache_dir):
        first = ReasoningSession(
            meeting, cache=SessionCache(store=ArtifactStore(cache_dir))
        )
        baseline = first.is_class_satisfiable("Speaker")
        # A "second process": a brand-new cache over the same directory.
        second = ReasoningSession(
            meeting, cache=SessionCache(store=ArtifactStore(cache_dir))
        )
        result = second.is_class_satisfiable("Speaker")
        stats = second.stats
        assert stats.store_hits == 1
        assert stats.expansion_builds == 0
        assert stats.fixpoint_runs == 0
        assert result.satisfiable == baseline.satisfiable
        assert result.solution == baseline.solution
        assert result.support == baseline.support

    def test_cardinality_queries_warm_their_extended_schema(
        self, meeting, cache_dir
    ):
        from repro.cli import parse_statement

        query = parse_statement("maxc(Speaker, Holds, U1) = 2")
        first = ReasoningSession(
            meeting, cache=SessionCache(store=ArtifactStore(cache_dir))
        )
        assert first.implies(query).implied
        second = ReasoningSession(
            meeting, cache=SessionCache(store=ArtifactStore(cache_dir))
        )
        assert second.implies(query).implied
        assert second.stats.store_hits == 1
        assert second.stats.fixpoint_runs == 0

    def test_damaged_store_entry_degrades_to_cold_build(
        self, meeting, cache_dir
    ):
        store = ArtifactStore(cache_dir)
        first = ReasoningSession(meeting, cache=SessionCache(store=store))
        first.is_class_satisfiable("Speaker")
        entry_path = store.entry_path(first.fingerprint)
        entry_path.write_bytes(entry_path.read_bytes()[:-5])
        second = ReasoningSession(
            meeting, cache=SessionCache(store=ArtifactStore(cache_dir))
        )
        assert second.is_class_satisfiable("Speaker").satisfiable
        stats = second.stats
        assert stats.store_hits == 0
        assert stats.store_misses == 1
        assert stats.fixpoint_runs == 1  # rebuilt from source
        assert stats.store_writes == 1  # and re-persisted

    def test_partial_bundles_are_not_adopted(self, meeting, cache_dir):
        from repro.session.fingerprint import schema_fingerprint

        store = ArtifactStore(cache_dir)
        fingerprint = schema_fingerprint(meeting)
        store.put(
            fingerprint,
            {
                "analysis": None,
                "expansion": None,
                "cr_system": None,
                "support": None,  # half-built state must not go live
                "witness": None,
                "class_verdicts": None,
            },
        )
        session = ReasoningSession(
            meeting, cache=SessionCache(store=ArtifactStore(cache_dir))
        )
        assert session.is_class_satisfiable("Speaker").satisfiable
        assert session.stats.store_hits == 0
        assert session.stats.fixpoint_runs == 1

    def test_storeless_cache_has_zero_store_counters(self, meeting):
        session = ReasoningSession(meeting, cache=SessionCache())
        session.is_class_satisfiable("Speaker")
        stats = session.stats
        assert stats.store_hits == 0
        assert stats.store_misses == 0
        assert stats.store_writes == 0


# ---------------------------------------------------------------------------
# The batch CLI against the store
# ---------------------------------------------------------------------------


class TestBatchCachePersistence:
    def test_warm_run_is_byte_identical_to_cold(
        self, meeting_file, cache_dir, capsys
    ):
        cold_code, cold = batch(
            meeting_file, capsys, "--cache-dir", cache_dir
        )
        warm_code, warm = batch(
            meeting_file, capsys, "--cache-dir", cache_dir
        )
        uncached_code, uncached = batch(meeting_file, capsys, "--no-cache")
        assert cold_code == warm_code == uncached_code == 0
        assert warm == cold == uncached

    def test_parallel_warm_run_is_byte_identical(
        self, meeting_file, cache_dir, capsys
    ):
        cold_code, cold = batch(
            meeting_file, capsys, "--cache-dir", cache_dir, "--jobs", "2"
        )
        warm_code, warm = batch(
            meeting_file, capsys, "--cache-dir", cache_dir, "--jobs", "2"
        )
        serial_code, serial = batch(meeting_file, capsys, "--no-cache")
        assert cold_code == warm_code == serial_code == 0
        assert warm == cold == serial

    def test_stats_line_reports_store_traffic(
        self, meeting_file, cache_dir, capsys
    ):
        _, cold = batch(
            meeting_file, capsys, "--cache-dir", cache_dir, "--stats"
        )
        _, warm = batch(
            meeting_file, capsys, "--cache-dir", cache_dir, "--stats"
        )
        assert "# store: 0 hit(s), 2 miss(es), 2 write(s)" in cold
        assert "# store: 2 hit(s), 0 miss(es), 0 write(s)" in warm

    def test_json_report_carries_store_counters(
        self, meeting_file, cache_dir, capsys
    ):
        import json

        batch(meeting_file, capsys, "--cache-dir", cache_dir)
        _, out = batch(
            meeting_file, capsys, "--cache-dir", cache_dir, "--json"
        )
        report = json.loads(out)
        assert report["stats"]["store_hits"] == 2
        assert report["stats"]["fixpoint_runs"] == 0

    def test_env_var_names_the_store(
        self, meeting_file, cache_dir, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        batch(meeting_file, capsys)
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 entr(ies)" in out

    def test_no_cache_flag_skips_the_env_store(
        self, meeting_file, cache_dir, capsys, monkeypatch
    ):
        import os

        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        code, _ = batch(meeting_file, capsys, "--no-cache")
        assert code == 0
        assert not os.path.exists(cache_dir)


# ---------------------------------------------------------------------------
# The cache maintenance subcommand
# ---------------------------------------------------------------------------


class TestCacheCli:
    def warm(self, meeting_file, cache_dir, capsys):
        batch(meeting_file, capsys, "--cache-dir", cache_dir)
        capsys.readouterr()

    def test_stats(self, meeting_file, cache_dir, capsys):
        self.warm(meeting_file, cache_dir, capsys)
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 entr(ies)" in out and "0 quarantined" in out

    def test_stats_json(self, meeting_file, cache_dir, capsys):
        import json

        self.warm(meeting_file, cache_dir, capsys)
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 2
        assert report["quarantined"] == 0

    def test_verify_clean_exits_zero(self, meeting_file, cache_dir, capsys):
        self.warm(meeting_file, cache_dir, capsys)
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0

    def test_verify_damage_exits_one_then_heals(
        self, meeting_file, cache_dir, capsys
    ):
        self.warm(meeting_file, cache_dir, capsys)
        store = ArtifactStore(cache_dir)
        entry = next(store.entries())
        entry.path.write_bytes(entry.path.read_bytes()[:-1])
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 1
        assert "truncated-payload" in capsys.readouterr().out
        # The damage was quarantined, so the next verify is clean ...
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
        # ... and a re-run rebuilds the missing entry without error.
        code, _ = batch(meeting_file, capsys, "--cache-dir", cache_dir)
        assert code == 0

    def test_quarantine_list(self, meeting_file, cache_dir, capsys):
        self.warm(meeting_file, cache_dir, capsys)
        assert (
            main(["cache", "quarantine", "list", "--cache-dir", cache_dir])
            == 0
        )
        assert "quarantine is empty" in capsys.readouterr().out
        store = ArtifactStore(cache_dir)
        entry = next(store.entries())
        entry.path.write_bytes(b"junk")
        main(["cache", "verify", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert (
            main(["cache", "quarantine", "list", "--cache-dir", cache_dir])
            == 0
        )
        assert entry.fingerprint in capsys.readouterr().out

    def test_clear(self, meeting_file, cache_dir, capsys):
        self.warm(meeting_file, cache_dir, capsys)
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 2 entr(ies)" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0 entr(ies)" in capsys.readouterr().out

    def test_missing_dir_is_a_usage_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err
