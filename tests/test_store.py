"""Unit and property tests for the crash-safe persistent artifact store.

The headline property (``TestCrashRecovery``): after a simulated crash
at *any* point of the atomic-write protocol, every fingerprint is
either absent or reads back checksum-valid — and a recovered process
can always write again (the crash leaves a lock file behind, exactly
like a killed process, so this also exercises stale-lock reclaim).
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    StoreError,
    StoreIntegrityError,
    StoreLockTimeout,
)
from repro.runtime.faults import (
    DISK_ENCODE_POINT,
    DISK_WRITE_POINTS,
    SimulatedCrash,
    inject_faults,
)
from repro.store import (
    ARTIFACT_VERSION,
    AdvisoryLock,
    ArtifactStore,
    LockOwner,
    atomic_write_bytes,
    backoff_delay,
    decode_entry,
    encode_entry,
    resolve_cache_dir,
    sweep_temp_files,
)
from repro.store.format import HEADER_SIZE, MAGIC

FP = "a" * 64
FP2 = "b" * 64


# ---------------------------------------------------------------------------
# The envelope format
# ---------------------------------------------------------------------------


class TestFormat:
    def test_round_trip(self):
        payload = b"some pickled artifact bytes"
        blob = encode_entry(payload, ARTIFACT_VERSION)
        assert decode_entry(blob, ARTIFACT_VERSION) == payload

    def test_empty_payload_round_trips(self):
        blob = encode_entry(b"", ARTIFACT_VERSION)
        assert decode_entry(blob, ARTIFACT_VERSION) == b""

    @pytest.mark.parametrize(
        "mutate, reason",
        [
            (lambda blob: blob[: HEADER_SIZE - 1], "truncated-header"),
            (lambda blob: b"XXXX" + blob[4:], "magic"),
            (lambda blob: blob[: len(blob) - 1], "truncated-payload"),
            (lambda blob: blob + b"!", "trailing-garbage"),
            (
                lambda blob: blob[:HEADER_SIZE]
                + bytes([blob[HEADER_SIZE] ^ 0xFF])
                + blob[HEADER_SIZE + 1 :],
                "checksum",
            ),
        ],
        ids=[
            "truncated-header",
            "magic",
            "truncated-payload",
            "trailing-garbage",
            "checksum",
        ],
    )
    def test_damage_reasons(self, mutate, reason):
        blob = mutate(encode_entry(b"payload", ARTIFACT_VERSION))
        with pytest.raises(StoreIntegrityError) as excinfo:
            decode_entry(blob, ARTIFACT_VERSION)
        assert excinfo.value.reason == reason

    def test_artifact_version_mismatch(self):
        blob = encode_entry(b"payload", ARTIFACT_VERSION)
        with pytest.raises(StoreIntegrityError) as excinfo:
            decode_entry(blob, ARTIFACT_VERSION + 1)
        assert excinfo.value.reason == "artifact-version"

    def test_format_version_mismatch(self):
        blob = bytearray(encode_entry(b"payload", ARTIFACT_VERSION))
        blob[4:6] = (99).to_bytes(2, "big")
        with pytest.raises(StoreIntegrityError) as excinfo:
            decode_entry(bytes(blob), ARTIFACT_VERSION)
        assert excinfo.value.reason == "format-version"

    def test_header_starts_with_magic(self):
        assert encode_entry(b"x", ARTIFACT_VERSION).startswith(MAGIC)


# ---------------------------------------------------------------------------
# The atomic write helper
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_writes_the_bytes(self, tmp_path):
        path = tmp_path / "sub" / "entry.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_replaces_atomically(self, tmp_path):
        path = tmp_path / "entry.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_no_temp_files_left_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "entry.bin", b"data")
        leftovers = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    @pytest.mark.parametrize("point", DISK_WRITE_POINTS)
    def test_crash_points_fire_in_protocol_order(self, tmp_path, point):
        path = tmp_path / "entry.bin"
        with inject_faults(disk_failures={point: {1}}) as plan:
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(path, b"doomed" * 10)
        assert plan.injected == [(point, 1)]
        # Fault points strictly before the scripted one all fired once.
        for earlier in DISK_WRITE_POINTS[: DISK_WRITE_POINTS.index(point)]:
            assert plan.calls[earlier] == 1

    def test_crash_before_rename_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "entry.bin"
        atomic_write_bytes(path, b"old")
        for point in DISK_WRITE_POINTS[:4]:  # everything before the rename
            with inject_faults(disk_failures={point: {1}}):
                with pytest.raises(SimulatedCrash):
                    atomic_write_bytes(path, b"new")
            assert path.read_bytes() == b"old"

    def test_crash_after_rename_publishes_the_new_bytes(self, tmp_path):
        path = tmp_path / "entry.bin"
        atomic_write_bytes(path, b"old")
        with inject_faults(disk_failures={"store:write:pre-dirsync": {1}}):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_torn_crash_leaves_a_sweepable_temp_file(self, tmp_path):
        path = tmp_path / "entry.bin"
        with inject_faults(disk_failures={"store:write:torn": {1}}):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(path, b"0123456789")
        temps = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert len(temps) == 1
        # The temp really is torn: only the first half made it out.
        assert temps[0].read_bytes() == b"01234"
        assert sweep_temp_files(tmp_path) == 1
        assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    def test_real_io_errors_clean_up_the_temp_file(self, tmp_path):
        path = tmp_path / "entry.bin"
        with inject_faults(
            disk_failures={"store:write:pre-fsync": {1}},
            error_factory=lambda point, index: OSError(28, "ENOSPC"),
        ):
            with pytest.raises(OSError):
                atomic_write_bytes(path, b"data")
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Advisory locks
# ---------------------------------------------------------------------------


class TestLocks:
    def test_acquire_release_round_trip(self, tmp_path):
        lock = AdvisoryLock(tmp_path / "x.lock")
        with lock:
            assert (tmp_path / "x.lock").exists()
            owner = LockOwner.decode((tmp_path / "x.lock").read_bytes())
            assert owner is not None and owner.pid == os.getpid()
        assert not (tmp_path / "x.lock").exists()

    def test_contention_times_out(self, tmp_path):
        path = tmp_path / "x.lock"
        with AdvisoryLock(path):
            contender = AdvisoryLock(path, timeout=0.05)
            with pytest.raises(StoreLockTimeout):
                contender.acquire()

    def test_dead_owner_is_reclaimed(self, tmp_path):
        # A finished child's pid is a realistic dead owner.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        path = tmp_path / "x.lock"
        path.write_bytes(LockOwner(child.pid, time.time(), "here").encode())
        with AdvisoryLock(path, timeout=0.5):
            pass  # acquired by reclaiming the dead owner's lock

    def test_overaged_lock_is_reclaimed_even_if_pid_lives(self, tmp_path):
        path = tmp_path / "x.lock"
        stale = LockOwner(os.getpid(), time.time() - 3600.0, "here")
        path.write_bytes(stale.encode())
        with AdvisoryLock(path, timeout=0.5, stale_after=1.0):
            pass

    def test_unreadable_owner_is_reclaimed(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_bytes(b"\xff\xfe not an owner record")
        with AdvisoryLock(path, timeout=0.5):
            pass

    def test_live_fresh_lock_is_respected(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_bytes(LockOwner(os.getpid(), time.time(), "here").encode())
        contender = AdvisoryLock(path, timeout=0.05, stale_after=30.0)
        with pytest.raises(StoreLockTimeout):
            contender.acquire()

    def test_release_without_acquire_is_a_noop(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_bytes(LockOwner(os.getpid(), time.time(), "here").encode())
        AdvisoryLock(path).release()  # never held it; must not unlink
        assert path.exists()

    def test_backoff_is_deterministic_and_bounded(self):
        delays = [backoff_delay(attempt) for attempt in range(20)]
        assert delays == [backoff_delay(attempt) for attempt in range(20)]
        assert all(0.0 < delay <= 0.2 for delay in delays)
        # The exponential component grows until the cap.
        assert delays[5] > delays[0]

    def test_owner_record_round_trips(self):
        owner = LockOwner(123, 456.25, "host:with:colons")
        assert LockOwner.decode(owner.encode()) == owner


# ---------------------------------------------------------------------------
# The store proper
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = {"support": frozenset({"x"}), "witness": {"x": 1}}
        assert store.put(FP, artifact)
        assert store.get(FP) == artifact
        assert store.stats.writes == 1
        assert store.stats.hits == 1

    def test_missing_entry_is_a_counted_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(FP) is None
        assert store.stats.misses == 1

    def test_entries_are_sharded_by_fingerprint_prefix(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, 1)
        path = store.entry_path(FP)
        assert path.parent.name == FP[:2]
        assert path.exists()

    def test_unsafe_keys_are_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(StoreError):
            store.put("../escape", 1)
        with pytest.raises(StoreError):
            store.get("dotted.name")

    def test_truncated_entry_quarantined_and_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, {"value": 1})
        path = store.entry_path(FP)
        path.write_bytes(path.read_bytes()[:-3])
        assert store.get(FP) is None  # damage reads as a miss
        assert store.stats.quarantined == 1
        infos = store.quarantined()
        assert len(infos) == 1 and infos[0].reason == "truncated-payload"
        assert store.put(FP, {"value": 2})  # rebuild lands cleanly
        assert store.get(FP) == {"value": 2}

    def test_bit_flip_quarantined_as_checksum(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, {"value": 1})
        path = store.entry_path(FP)
        blob = bytearray(path.read_bytes())
        blob[HEADER_SIZE + 2] ^= 0x01
        path.write_bytes(bytes(blob))
        assert store.get(FP) is None
        assert [info.reason for info in store.quarantined()] == ["checksum"]

    def test_injected_corruption_is_caught_on_read(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with inject_faults(
            disk_corruptions={DISK_ENCODE_POINT: {1}}
        ) as plan:
            assert store.put(FP, {"value": 1})  # silent bit-rot
        assert plan.corrupted == [(DISK_ENCODE_POINT, 1)]
        assert store.get(FP) is None  # checksum catches it
        assert [info.reason for info in store.quarantined()] == ["checksum"]

    def test_version_mismatch_degrades_to_rebuild(self, tmp_path):
        old = ArtifactStore(tmp_path, artifact_version=ARTIFACT_VERSION)
        old.put(FP, {"value": "old-codec"})
        new = ArtifactStore(tmp_path, artifact_version=ARTIFACT_VERSION + 1)
        assert new.get(FP) is None
        reasons = [info.reason for info in new.quarantined()]
        assert reasons == ["artifact-version"]
        assert new.put(FP, {"value": "new-codec"})
        assert new.get(FP) == {"value": "new-codec"}

    def test_mislabelled_entry_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, {"value": 1})
        source = store.entry_path(FP)
        target = store.entry_path(FP2)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())  # stale copy, wrong key
        assert store.get(FP2) is None
        assert [info.reason for info in store.quarantined()] == [
            "key-mismatch"
        ]

    def test_unpicklable_artifact_degrades_put(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.put(FP, lambda: None) is False  # lambdas don't pickle
        assert store.stats.write_errors == 1
        assert store.get(FP) is None

    def test_contended_put_degrades_not_raises(self, tmp_path):
        store = ArtifactStore(tmp_path, lock_timeout=0.05)
        lock = store._lock_for(FP, "artifacts")
        lock.acquire()
        try:
            assert store.put(FP, {"value": 1}) is False
            assert store.stats.lock_timeouts == 1
        finally:
            lock.release()

    def test_io_error_degrades_put(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with inject_faults(
            disk_failures={"store:write:pre-fsync": {1}},
            error_factory=lambda point, index: OSError(28, "ENOSPC"),
        ):
            assert store.put(FP, {"value": 1}) is False
        assert store.stats.write_errors == 1
        assert store.get(FP) is None
        assert store.put(FP, {"value": 1})  # disk pressure relieved

    def test_crash_leaves_lock_and_next_writer_reclaims(self, tmp_path):
        store = ArtifactStore(tmp_path, stale_lock_after=0.0)
        with inject_faults(
            disk_failures={"store:write:pre-rename": {1}}
        ):
            with pytest.raises(SimulatedCrash):
                store.put(FP, {"value": 1})
        lock_path = store._lock_for(FP, "artifacts").path
        assert lock_path.exists()  # the "killed process" held it
        fresh = ArtifactStore(tmp_path, stale_lock_after=0.0)
        assert fresh.put(FP, {"value": 2})  # reclaims, then writes
        assert fresh.get(FP) == {"value": 2}

    def test_startup_sweeps_crashed_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with inject_faults(disk_failures={"store:write:torn": {1}}):
            with pytest.raises(SimulatedCrash):
                store.put(FP, {"value": 1})
        shard = store.entry_path(FP).parent
        assert any(p.suffix == ".tmp" for p in shard.iterdir())
        ArtifactStore(tmp_path)  # a new process starts up
        assert not any(p.suffix == ".tmp" for p in shard.iterdir())

    def test_verify_quarantines_damage_and_reports(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, {"value": 1})
        store.put(FP2, {"value": 2})
        bad = store.entry_path(FP2)
        bad.write_bytes(bad.read_bytes()[:-1])
        outcome = store.verify()
        assert (outcome.checked, outcome.valid) == (2, 1)
        assert not outcome.clean
        assert outcome.quarantined == [
            {
                "fingerprint": FP2,
                "kind": "artifacts",
                "reason": "truncated-payload",
            }
        ]
        assert store.verify().clean  # damage was moved aside

    def test_clear_removes_entries_and_optionally_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, 1)
        store.put(FP2, 2)
        bad = store.entry_path(FP)
        bad.write_bytes(b"garbage")
        assert store.get(FP) is None  # quarantines the garbage
        assert store.clear() == 1
        assert store.summary()["entries"] == 0
        assert store.summary()["quarantined"] == 1
        store.clear(include_quarantine=True)
        assert store.summary()["quarantined"] == 0

    def test_summary_shape(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, {"value": 1})
        summary = store.summary()
        assert summary["entries"] == 1
        assert summary["bytes"] == store.entry_path(FP).stat().st_size
        assert summary["artifact_version"] == ARTIFACT_VERSION

    def test_kinds_are_independent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, "a", kind="artifacts")
        store.put(FP, "b", kind="other")
        assert store.get(FP, kind="artifacts") == "a"
        assert store.get(FP, kind="other") == "b"


class TestResolveCacheDir:
    def test_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/from/env")
        assert resolve_cache_dir("/from/flag") == "/from/flag"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/from/env")
        assert resolve_cache_dir(None) == "/from/env"

    def test_no_cache_overrides_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/from/env")
        assert resolve_cache_dir("/from/flag", no_cache=True) is None

    def test_nothing_set_means_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None) is None


# ---------------------------------------------------------------------------
# Crash-point recovery properties
# ---------------------------------------------------------------------------

artifact_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.text(max_size=8)
    | st.frozensets(st.text(max_size=4), max_size=3),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=8,
)


class TestCrashRecovery:
    @settings(max_examples=60)
    @given(
        point=st.sampled_from(DISK_WRITE_POINTS),
        old=artifact_values,
        new=artifact_values,
        have_old=st.booleans(),
    )
    def test_crash_at_any_point_leaves_absent_or_valid(
        self, point, old, new, have_old
    ):
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root, stale_lock_after=0.0)
            if have_old:
                assert store.put(FP, old)
            with inject_faults(disk_failures={point: {1}}) as plan:
                with pytest.raises(SimulatedCrash):
                    store.put(FP, new)
            assert plan.injected == [(point, 1)]
            # "Reboot": a fresh process opens the store (sweeping temp
            # wreckage) and reads.  The entry is absent, the old value,
            # or the new value — never an error, never garbage.
            recovered = ArtifactStore(root, stale_lock_after=0.0)
            found = recovered.get(FP)
            assert found is None or found == old or found == new
            if have_old and point != "store:write:pre-dirsync":
                # Until the rename happens the old entry must survive.
                assert found == old
            # And the recovered process can always write again, even
            # though the crashed writer's lock file is still on disk.
            assert recovered.put(FP, new)
            assert recovered.get(FP) == new

    @settings(max_examples=30)
    @given(value=artifact_values)
    def test_warm_read_equals_what_was_written(self, value):
        with tempfile.TemporaryDirectory() as root:
            ArtifactStore(root).put(FP, value)
            # A different process would re-open the store from scratch;
            # byte-level equality of the pickle round trip is what the
            # batch CLI's warm-equals-cold guarantee rests on.
            found = ArtifactStore(root).get(FP)
            assert found == value
            assert pickle.dumps(found) == pickle.dumps(value)

    @settings(max_examples=25)
    @given(
        corrupt_first=st.booleans(),
        value=artifact_values,
    )
    def test_corruption_never_serves_bad_data(self, corrupt_first, value):
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            bundle = {"v": value}  # non-None wrapper: a miss is unambiguous
            failures = {DISK_ENCODE_POINT: {1 if corrupt_first else 2}}
            with inject_faults(disk_corruptions=failures):
                store.put(FP, bundle)
                store.put(FP2, bundle)
            # Exactly one entry was silently flipped; reads either
            # return the true value or quarantine — never wrong data.
            results = [store.get(FP), store.get(FP2)]
            assert results.count(None) == 1
            assert bundle in results
            assert len(store.quarantined()) == 1
