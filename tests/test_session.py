"""The session layer: cache reuse, pruned enumeration, fingerprints,
budget degradation, and the ISSUE-2 acceptance scenario (a 50-query
batch on a Figure-5-sized schema must build the expansion zero times
once warm)."""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MinCardinalityStatement,
)
from repro.cr.expansion import Expansion
from repro.cr.schema import CRSchema
from repro.runtime.budget import Budget
from repro.runtime.outcome import Verdict
from repro.session import ReasoningSession, SessionCache, schema_fingerprint
from tests.strategies import property_max_examples, schemas


def _chain(k: int) -> CRSchema:
    builder = SchemaBuilder(f"Chain{k}")
    for i in range(k):
        builder.cls(f"K{i}")
    for i in range(1, k):
        builder.isa(f"K{i}", f"K{i-1}")
    return builder.build()


# ---------------------------------------------------------------------------
# the acceptance scenario: 50 warm queries, zero expansion builds
# ---------------------------------------------------------------------------


def test_fifty_query_batch_builds_expansion_zero_times_warm(meeting):
    session = ReasoningSession(meeting)
    queries = [
        ("sat", cls) for cls in meeting.classes
    ] + [
        ("implies", IsaStatement("Speaker", "Discussant")),
        ("implies", IsaStatement("Discussant", "Speaker")),
        ("implies", DisjointnessStatement(["Speaker", "Talk"])),
        ("implies", MinCardinalityStatement("Speaker", "Holds", "U1", 1)),
    ]

    def run(query):
        kind, payload = query
        if kind == "sat":
            return session.is_class_satisfiable(payload).satisfiable
        return session.implies(payload).implied

    # Warm-up pass: builds the schema's entry and the one extended
    # schema the cardinality query needs.
    warm_answers = [run(query) for query in queries]
    assert session.warm

    builds_before = Expansion.build_count
    batch = [queries[i % len(queries)] for i in range(50)]
    answers = [run(query) for query in batch]
    assert Expansion.build_count == builds_before, (
        "a warm 50-query batch must not rebuild the expansion"
    )
    assert answers == [warm_answers[i % len(queries)] for i in range(50)]
    assert session.stats.expansion_builds == 2  # meeting + one extension


def test_repeated_cardinality_queries_warm_up(meeting):
    session = ReasoningSession(meeting)
    query = MinCardinalityStatement("Discussant", "Holds", "U1", 1)
    first = session.implies(query)
    builds_before = Expansion.build_count
    second = session.implies(query)
    assert Expansion.build_count == builds_before
    assert first.implied == second.implied


# ---------------------------------------------------------------------------
# pruned enumeration
# ---------------------------------------------------------------------------


@settings(max_examples=property_max_examples())
@given(data=st.data())
def test_enumeration_is_exactly_the_consistent_compounds(data):
    """The closure-guided search must generate the ISA-consistent
    compounds and *only* those — compared against the brute-force
    powerset filter it replaced."""
    schema = data.draw(schemas(allow_extensions=True))
    expansion = Expansion(schema)
    generated = {
        compound.members
        for compound in expansion.consistent_compound_classes()
    }
    for members in generated:
        assert schema.is_consistent_compound(members)
    brute_force = {
        frozenset(subset)
        for size in range(1, len(schema.classes) + 1)
        for subset in itertools.combinations(schema.classes, size)
        if schema.is_consistent_compound(frozenset(subset))
    }
    assert generated == brute_force


def test_enumeration_is_linear_on_isa_chains():
    """On a k-chain the old powerset-and-filter walk visited O(2^k)
    candidates; unit propagation decides every class on the spot, so
    the search tree is one node per class plus the backtrack spine."""
    k = 24
    expansion = Expansion(_chain(k))
    assert len(expansion.consistent_compound_classes()) == k
    assert expansion.nodes_visited <= 2 * k + 2


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_ignores_name_but_tracks_semantics(meeting):
    relabelled = CRSchema(
        classes=meeting.classes,
        relationships=meeting.relationships,
        isa=meeting.isa_statements,
        cards=meeting.declared_cards,
        disjointness=meeting.disjointness_groups,
        coverings=meeting.coverings,
        name="SomethingElseEntirely",
    )
    assert schema_fingerprint(relabelled) == schema_fingerprint(meeting)

    extra_isa = CRSchema(
        classes=meeting.classes,
        relationships=meeting.relationships,
        isa=tuple(meeting.isa_statements) + (("Talk", "Speaker"),),
        cards=meeting.declared_cards,
        disjointness=meeting.disjointness_groups,
        coverings=meeting.coverings,
        name=meeting.name,
    )
    assert schema_fingerprint(extra_isa) != schema_fingerprint(meeting)


def test_for_schema_sibling_is_warm_after_pure_relabel(meeting):
    session = ReasoningSession(meeting)
    session.satisfiable_classes()
    relabelled = CRSchema(
        classes=meeting.classes,
        relationships=meeting.relationships,
        isa=meeting.isa_statements,
        cards=meeting.declared_cards,
        disjointness=meeting.disjointness_groups,
        coverings=meeting.coverings,
        name="MeetingV2",
    )
    sibling = session.for_schema(relabelled)
    assert sibling.warm
    builds_before = Expansion.build_count
    assert sibling.satisfiable_classes() == session.satisfiable_classes()
    assert Expansion.build_count == builds_before


# ---------------------------------------------------------------------------
# budgets: degrade to UNKNOWN, then resume under a fresh budget
# ---------------------------------------------------------------------------


def test_budget_exhaustion_degrades_then_resumes(meeting):
    session = ReasoningSession(meeting)
    starved = Budget(max_expansion_nodes=2)
    degraded = session.satisfiable_classes(budget=starved)
    assert degraded == {cls: Verdict.UNKNOWN for cls in meeting.classes}
    assert not session.warm  # exhaustion must not publish partial state

    result = session.is_class_satisfiable("Speaker", budget=Budget(max_expansion_nodes=2))
    assert result.verdict is Verdict.UNKNOWN
    assert not result.satisfiable
    assert result.unknown_reason

    # A fresh (absent) budget resumes from whatever stage completed.
    verdicts = session.satisfiable_classes()
    assert verdicts == {cls: True for cls in meeting.classes}
    assert session.warm


# ---------------------------------------------------------------------------
# shared caches
# ---------------------------------------------------------------------------


def test_shared_cache_is_hit_across_sessions(meeting):
    cache = SessionCache()
    first = ReasoningSession(meeting, cache=cache)
    first.satisfiable_classes()
    builds_before = Expansion.build_count
    second = ReasoningSession(meeting, cache=cache)
    assert second.warm
    assert second.satisfiable_classes() == first.satisfiable_classes()
    assert Expansion.build_count == builds_before
    assert cache.stats.expansion_builds == 1


def test_lru_eviction_and_invalidation(meeting, figure1):
    cache = SessionCache(max_entries=1)
    meeting_session = ReasoningSession(meeting, cache=cache)
    meeting_session.satisfiable_classes()
    assert len(cache) == 1

    figure1_session = ReasoningSession(figure1, cache=cache)
    figure1_session.satisfiable_classes()
    assert len(cache) == 1
    assert cache.stats.evictions == 1
    assert not meeting_session.warm  # evicted

    assert cache.invalidate(figure1_session.fingerprint)
    assert not cache.invalidate(figure1_session.fingerprint)
    assert len(cache) == 0
