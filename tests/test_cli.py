"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, parse_statement
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.dsl import serialize_schema
from repro.errors import ReproError
from repro.paper import figure1_schema, meeting_schema, refined_meeting_schema


@pytest.fixture
def meeting_file(tmp_path):
    path = tmp_path / "meeting.cr"
    path.write_text(serialize_schema(meeting_schema()))
    return str(path)


@pytest.fixture
def figure1_file(tmp_path):
    path = tmp_path / "figure1.cr"
    path.write_text(serialize_schema(figure1_schema()))
    return str(path)


@pytest.fixture
def refined_file(tmp_path):
    path = tmp_path / "refined.cr"
    path.write_text(serialize_schema(refined_meeting_schema()))
    return str(path)


class TestParseStatement:
    def test_isa(self):
        assert parse_statement("A isa B") == IsaStatement("A", "B")

    def test_minc(self):
        assert parse_statement("minc(C, R, U) = 3") == MinCardinalityStatement(
            "C", "R", "U", 3
        )

    def test_maxc(self):
        assert parse_statement("maxc(C,R,U)=1") == MaxCardinalityStatement(
            "C", "R", "U", 1
        )

    def test_disjoint(self):
        statement = parse_statement("disjoint(A, B, C)")
        assert statement == DisjointnessStatement(frozenset({"A", "B", "C"}))

    def test_garbage_rejected(self):
        with pytest.raises(ReproError):
            parse_statement("A subset of B")


class TestCheck:
    def test_satisfiable_schema_exits_zero(self, meeting_file, capsys):
        assert main(["check", meeting_file]) == 0
        out = capsys.readouterr().out
        assert "Speaker: satisfiable" in out

    def test_unsatisfiable_schema_exits_one(self, figure1_file, capsys):
        assert main(["check", figure1_file]) == 1
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_single_class(self, meeting_file, capsys):
        assert main(["check", meeting_file, "--class", "Talk"]) == 0
        assert "Talk: satisfiable" in capsys.readouterr().out

    def test_unrestricted_flag(self, figure1_file, capsys):
        assert main(["check", figure1_file, "--unrestricted"]) == 1
        out = capsys.readouterr().out
        assert "[unrestricted: satisfiable]" in out

    def test_naive_engine(self, meeting_file, capsys):
        assert main(
            ["check", meeting_file, "--class", "Talk", "--engine", "naive"]
        ) == 0

    def test_missing_file(self, capsys):
        assert main(["check", "/no/such/file.cr"]) == 2
        assert "error" in capsys.readouterr().err


class TestImplies:
    def test_figure7_inference(self, meeting_file, capsys):
        code = main(["implies", meeting_file, "Speaker isa Discussant"])
        assert code == 0
        assert "S |= Speaker isa Discussant" in capsys.readouterr().out

    def test_maxc_inference(self, meeting_file, capsys):
        code = main(["implies", meeting_file, "maxc(Speaker, Holds, U1) = 1"])
        assert code == 0

    def test_non_implication_with_countermodel(self, meeting_file, capsys):
        code = main(
            ["implies", meeting_file, "Talk isa Speaker", "--countermodel"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "S |/= Talk isa Speaker" in out
        assert "Delta = {" in out

    def test_bad_statement(self, meeting_file, capsys):
        assert main(["implies", meeting_file, "gibberish!!"]) == 2


class TestModel:
    def test_witness_model_printed(self, meeting_file, capsys):
        assert main(["model", meeting_file, "--class", "Speaker"]) == 0
        out = capsys.readouterr().out
        assert "Speaker^I" in out
        assert "Holds^I" in out

    def test_unsatisfiable_class(self, figure1_file, capsys):
        assert main(["model", figure1_file, "--class", "D"]) == 1


class TestExplainAndDebug:
    def test_explain_prints_a_proof(self, figure1_file, capsys):
        assert main(["explain", figure1_file, "--class", "D"]) == 0
        assert "Farkas" in capsys.readouterr().out

    def test_explain_satisfiable_is_an_error(self, meeting_file, capsys):
        assert main(["explain", meeting_file, "--class", "Talk"]) == 2

    def test_debug_reports_a_mus(self, refined_file, capsys):
        assert main(["debug", refined_file, "--class", "Speaker"]) == 0
        out = capsys.readouterr().out
        assert "minimal conflicting constraint set" in out

    def test_debug_deletion_algorithm(self, figure1_file, capsys):
        code = main(
            ["debug", figure1_file, "--class", "D", "--algorithm", "deletion"]
        )
        assert code == 0


class TestRenderAndFmt:
    def test_render_schema(self, meeting_file, capsys):
        assert main(["render", meeting_file]) == 0
        assert "Sisa" in capsys.readouterr().out

    def test_render_expansion(self, meeting_file, capsys):
        assert main(["render", meeting_file, "--what", "expansion"]) == 0
        assert "Cc = {C1, C3, C4, C5, C7};" in capsys.readouterr().out

    def test_render_system(self, meeting_file, capsys):
        assert main(["render", meeting_file, "--what", "system"]) == 0
        assert "lifted minc disequations" in capsys.readouterr().out

    def test_fmt_roundtrip(self, meeting_file, capsys):
        assert main(["fmt", meeting_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("schema Meeting {")

    def test_fmt_write_in_place(self, tmp_path):
        path = tmp_path / "messy.cr"
        path.write_text(
            "schema S {   class A;\n\n  class B;"
            " relationship R(U1: A, U2: B); }"
        )
        assert main(["fmt", str(path), "--write"]) == 0
        assert path.read_text().startswith("schema S {\n  class A;")


class TestExitCodes:
    """The full matrix: 0 positive, 1 negative, 2 usage error, 3 exhaustion."""

    def test_check_positive_is_zero(self, meeting_file):
        assert main(["check", meeting_file]) == 0

    def test_check_negative_is_one(self, figure1_file):
        assert main(["check", figure1_file]) == 1

    def test_implies_positive_is_zero(self, meeting_file):
        assert main(["implies", meeting_file, "Speaker isa Discussant"]) == 0

    def test_implies_negative_is_one(self, meeting_file):
        assert main(["implies", meeting_file, "Talk isa Speaker"]) == 1

    def test_model_negative_is_one(self, figure1_file):
        assert main(["model", figure1_file, "--class", "D"]) == 1

    def test_unknown_class_is_two(self, meeting_file, capsys):
        assert main(["check", meeting_file, "--class", "Nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_is_two_with_position(self, tmp_path, capsys):
        path = tmp_path / "broken.cr"
        path.write_text("schema Bad {\n  class A;\n  garbage !!\n}\n")
        assert main(["check", str(path)]) == 2
        err = capsys.readouterr().err
        assert "3:11" in err  # 1-based line:column of the offending token

    def test_explain_on_satisfiable_is_two(self, meeting_file):
        assert main(["explain", meeting_file, "--class", "Speaker"]) == 2

    def test_budget_exhaustion_is_three(self, meeting_file, capsys):
        code = main(["check", meeting_file, "--max-expansion", "1"])
        assert code == 3
        assert "UNKNOWN" in capsys.readouterr().out

    def test_zero_timeout_is_three(self, meeting_file):
        assert main(["check", meeting_file, "--timeout", "0"]) == 3

    def test_single_class_budget_unknown(self, meeting_file, capsys):
        code = main(
            ["check", meeting_file, "--class", "Speaker", "--max-lp", "1"]
        )
        assert code == 3
        assert "Speaker: UNKNOWN" in capsys.readouterr().out

    def test_implies_budget_unknown_is_three(self, meeting_file, capsys):
        code = main(
            ["implies", meeting_file, "Speaker isa Discussant", "--max-lp", "1"]
        )
        assert code == 3
        assert "unknown" in capsys.readouterr().out

    def test_model_under_ambient_budget_is_three(self, meeting_file, capsys):
        code = main(
            ["model", meeting_file, "--class", "Speaker", "--max-expansion", "1"]
        )
        assert code == 3
        assert "budget exhausted" in capsys.readouterr().err

    def test_debug_under_ambient_budget_is_three(self, figure1_file, capsys):
        code = main(
            ["debug", figure1_file, "--class", "D", "--timeout", "0"]
        )
        assert code == 3
        assert "budget exhausted" in capsys.readouterr().err

    def test_explain_under_ambient_budget_is_three(self, figure1_file):
        assert main(
            ["explain", figure1_file, "--class", "D", "--timeout", "0"]
        ) == 3

    def test_generous_budget_does_not_change_the_answer(self, meeting_file):
        assert main(["check", meeting_file, "--timeout", "60"]) == 0

    def test_static_expansion_limit_is_three(self, tmp_path, capsys):
        # Enough classes that the default ExpansionLimits guard fires
        # (2^17 - 1 compound classes > the 2^16 cap) before any budget.
        classes = "\n".join(f"  class C{i};" for i in range(17))
        path = tmp_path / "wide.cr"
        path.write_text(f"schema Wide {{\n{classes}\n}}\n")
        assert main(["check", str(path)]) == 3
        assert "compound classes" in capsys.readouterr().err


class TestBatch:
    def test_inline_queries_share_one_expansion(self, meeting_file, capsys):
        code = main(
            [
                "batch",
                meeting_file,
                "--query",
                "sat Talk",
                "--query",
                "Talk isa Speaker",
                "--stats",
            ]
        )
        assert code == 1  # the ISA statement is not implied
        out = capsys.readouterr().out
        assert "sat Talk: satisfiable" in out
        assert "S |/= Talk isa Speaker" in out
        assert "1 expansion build(s)" in out

    def test_query_file_with_comments(self, meeting_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# positive-only batch\n"
            "sat Speaker\n"
            "\n"
            "Discussant isa Speaker\n"
            "maxc(Talk, Holds, U2) = 1\n"
        )
        assert main(["batch", meeting_file, str(queries)]) == 0
        out = capsys.readouterr().out
        assert "S |= Discussant isa Speaker" in out

    def test_stdin_queries(self, meeting_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("sat Speaker\n"))
        assert main(["batch", meeting_file, "-"]) == 0
        assert "sat Speaker: satisfiable" in capsys.readouterr().out

    def test_json_report(self, meeting_file, capsys):
        import json

        code = main(
            [
                "batch",
                meeting_file,
                "--query",
                "sat Speaker",
                "--query",
                "Discussant isa Speaker",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "Meeting"
        assert len(report["fingerprint"]) == 64
        assert [r["verdict"] for r in report["results"]] == [
            "sat",
            "implied",
        ]
        assert report["stats"]["expansion_builds"] == 1

    def test_empty_batch_is_a_usage_error(self, meeting_file, capsys):
        assert main(["batch", meeting_file]) == 2
        assert "at least one query" in capsys.readouterr().err

    def test_unsatisfiable_class_exits_one(self, figure1_file, capsys):
        code = main(["batch", figure1_file, "--query", "sat D"])
        assert code == 1
        assert "sat D: UNSATISFIABLE" in capsys.readouterr().out

    def test_exhausted_budget_exits_three(self, meeting_file, capsys):
        code = main(
            ["batch", meeting_file, "--query", "sat Talk", "--timeout", "0"]
        )
        assert code == 3
        assert "UNKNOWN" in capsys.readouterr().out
