"""Unit tests for Fourier–Motzkin elimination."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.solver.fourier_motzkin import fm_feasible, fm_solve
from repro.solver.linear import LinearSystem, term


class TestFeasibility:
    def test_simple_feasible(self):
        system = LinearSystem([term("x") + term("y") <= 4, term("x") >= 1])
        assert fm_feasible(system)

    def test_simple_infeasible(self):
        system = LinearSystem([term("x") >= 3, term("x") <= 2])
        assert not fm_feasible(system)

    def test_implicit_nonnegativity(self):
        assert not fm_feasible(LinearSystem([term("x") <= -1]))

    def test_free_variables(self):
        system = LinearSystem([term("x") <= -1])
        assert fm_feasible(system, free_variables=["x"])

    def test_equalities(self):
        system = LinearSystem(
            [(term("x") + term("y")).equals(4), term("x").equals(5)]
        )
        assert not fm_feasible(system)  # would force y = -1 < 0

    def test_empty_system(self):
        assert fm_feasible(LinearSystem(variables=["x"]))


class TestStrictInequalities:
    def test_open_interval_is_feasible_over_rationals(self):
        system = LinearSystem([term("x") > 0, term("x") < 1])
        result = fm_solve(system)
        assert result.feasible
        assert 0 < result.assignment["x"] < 1

    def test_empty_open_interval(self):
        system = LinearSystem([term("x") > 1, term("x") < 1])
        assert not fm_feasible(system)

    def test_strict_against_equality(self):
        system = LinearSystem([term("x").equals(1), term("x") > 1])
        assert not fm_feasible(system)

    def test_strict_homogeneous(self):
        c, h = term("c"), term("h")
        system = LinearSystem([2 * c <= h, c >= h, c > 0])
        assert not fm_feasible(system)
        relaxed = LinearSystem([c <= h, 2 * c >= h, c > 0])
        assert fm_feasible(relaxed)


class TestWitnesses:
    def test_witness_satisfies_system(self):
        x, y = term("x"), term("y")
        system = LinearSystem([x + y <= 4, x - y >= 1, y > 0])
        result = fm_solve(system)
        assert result.feasible
        assignment = dict(result.assignment)
        assert system.is_satisfied_by(assignment)
        assert all(value >= 0 for value in assignment.values())

    def test_witness_with_tight_equalities(self):
        x, y = term("x"), term("y")
        system = LinearSystem([(x + y).equals(2), (x - y).equals(0)])
        result = fm_solve(system)
        assert result.assignment == {"x": 1, "y": 1}

    def test_witness_with_only_lower_bounds(self):
        system = LinearSystem([term("x") >= 7])
        result = fm_solve(system)
        assert result.assignment["x"] >= 7


class TestBudget:
    def test_budget_exceeded_raises(self):
        # 8 variables all pairwise related: the elimination blows up
        # beyond a tiny budget.
        variables = [term(f"x{i}") for i in range(8)]
        constraints = []
        for i, a in enumerate(variables):
            for b in variables[i + 1 :]:
                constraints.append(a + b <= 10)
                constraints.append(a - b <= 1)
        system = LinearSystem(constraints)
        with pytest.raises(SolverError):
            fm_solve(system, max_constraints=10)


class TestDedup:
    def test_duplicate_constraints_collapse(self):
        x = term("x")
        system = LinearSystem([x <= 1, 2 * x <= 2, 3 * x <= 3])
        result = fm_solve(system)
        assert result.feasible
        assert result.assignment["x"] <= 1

    def test_trivially_true_rows_dropped(self):
        system = LinearSystem([term("x") - term("x") <= 1, term("x") <= 5])
        assert fm_feasible(system)


class TestExactness:
    def test_fractional_witness(self):
        x = term("x")
        system = LinearSystem([3 * x >= 1, 3 * x <= 1])
        result = fm_solve(system)
        assert result.assignment["x"] == Fraction(1, 3)
