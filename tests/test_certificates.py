"""Unit and property tests for Farkas certificates."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solver.certificates import FarkasCertificate, farkas_certificate
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation, term
from repro.solver.simplex import solve_lp


class TestExtraction:
    def test_feasible_system_has_no_certificate(self):
        x = term("x")
        assert farkas_certificate(LinearSystem([x <= 5])) is None

    def test_simple_infeasible_interval(self):
        x = term("x")
        system = LinearSystem([x >= 3, x <= 2])
        certificate = farkas_certificate(system)
        assert certificate is not None
        assert certificate.verify(system)

    def test_figure1_style_cone(self):
        c, r = term("c"), term("r")
        system = LinearSystem([2 * c <= r, c >= r, c >= 1])
        certificate = farkas_certificate(system)
        assert certificate is not None
        assert certificate.verify(system)
        # The proof must use the positivity row: without it the cone has
        # the zero solution.
        used = {index for index, _ in certificate.weights}
        assert 2 in used

    def test_equality_infeasibility(self):
        x, y = term("x"), term("y")
        system = LinearSystem([(x + y + 1).equals(0)])
        certificate = farkas_certificate(system)
        assert certificate is not None
        assert certificate.verify(system)

    def test_nonnegativity_driven_infeasibility(self):
        x = term("x")
        system = LinearSystem([x <= -1])
        certificate = farkas_certificate(system)
        assert certificate is not None
        assert certificate.verify(system)

    def test_strict_constraints_rejected(self):
        with pytest.raises(SolverError):
            farkas_certificate(LinearSystem([term("x") > 0]))

    def test_pretty_includes_labels(self):
        x = term("x")
        system = LinearSystem(
            [
                (x >= 3).labelled("lower"),
                (x <= 2).labelled("upper"),
            ]
        )
        certificate = farkas_certificate(system)
        text = certificate.pretty(system)
        assert "[lower]" in text or "[upper]" in text
        assert "> 0 for all non-negative unknowns" in text


class TestVerification:
    def test_bogus_weights_rejected(self):
        x = term("x")
        system = LinearSystem([x >= 3, x <= 2])
        bogus = FarkasCertificate(((0, Fraction(1)),))  # wrong sign for GE
        assert not bogus.verify(system)

    def test_zero_combination_rejected(self):
        x = term("x")
        system = LinearSystem([x >= 3, x <= 2])
        assert not FarkasCertificate(()).verify(system)

    def test_out_of_range_index_rejected(self):
        system = LinearSystem([term("x") <= 2])
        assert not FarkasCertificate(((7, Fraction(1)),)).verify(system)

    def test_combination_with_negative_coefficient_rejected(self):
        # Weighting only "x - y <= 0" gives combination x - y, whose y
        # coefficient is negative: not a proof.
        x, y = term("x"), term("y")
        system = LinearSystem([x - y <= 0, y <= 1])
        candidate = FarkasCertificate(((0, Fraction(1)),))
        assert not candidate.verify(system)


NUM_VARS = 3
VARIABLES = [f"x{i}" for i in range(NUM_VARS)]


@st.composite
def random_systems(draw) -> LinearSystem:
    constraints = []
    for _ in range(draw(st.integers(1, 5))):
        coeffs = {name: draw(st.integers(-3, 3)) for name in VARIABLES}
        constant = draw(st.integers(-4, 4))
        relation = draw(
            st.sampled_from([Relation.LE, Relation.GE, Relation.EQ])
        )
        constraints.append(Constraint(LinExpr(coeffs, constant), relation))
    return LinearSystem(constraints, variables=VARIABLES)


@settings(max_examples=120, deadline=None)
@given(random_systems())
def test_certificate_exists_iff_infeasible(system):
    """Farkas' lemma, executably: certificate ⟺ simplex infeasible."""
    certificate = farkas_certificate(system)
    feasible = solve_lp(system).is_feasible
    if feasible:
        assert certificate is None
    else:
        assert certificate is not None
        assert certificate.verify(system)
