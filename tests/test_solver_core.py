"""Unit tests for the interned sparse solver core.

Covers the three layers of :mod:`repro.solver.core`: the interning
primitives (:class:`VariableTable`, :class:`SparseRow`,
:class:`InternedSystem` and its boundary conversions), the sparse
revised simplex (:func:`solve_interned` across the three statuses,
presolve, free variables, and the integer fast path), and the
homogeneous helpers (:func:`sharpened_rows`,
:func:`interned_positive_solution`, :func:`interned_maximal_support`),
including a differential check against the dense tableau on the
paper's meeting system.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.solver.core import (
    InternedSystem,
    SparseRow,
    SparseStatus,
    VariableTable,
    _div,
    _norm,
    interned_maximal_support,
    interned_positive_solution,
    sharpened_rows,
    solve_interned,
)
from repro.solver.homogeneous import maximal_support as dense_maximal_support
from repro.solver.linear import Constraint, LinearSystem, Relation, term


class TestNormalisation:
    def test_norm_collapses_integral_fractions_to_int(self):
        value = _norm(Fraction(6, 3))
        assert value == 2
        assert type(value) is int

    def test_norm_keeps_proper_fractions(self):
        assert _norm(Fraction(1, 3)) == Fraction(1, 3)

    def test_norm_keeps_plain_ints(self):
        assert _norm(7) == 7
        assert type(_norm(7)) is int

    def test_div_takes_the_integer_fast_path(self):
        value = _div(6, 3)
        assert value == 2
        assert type(value) is int

    def test_div_falls_back_to_exact_rationals(self):
        assert _div(1, 3) == Fraction(1, 3)
        assert _div(Fraction(1, 2), 2) == Fraction(1, 4)

    def test_div_renormalises_a_rational_quotient(self):
        value = _div(Fraction(3, 2), Fraction(1, 2))
        assert value == 3
        assert type(value) is int


class TestVariableTable:
    def test_intern_is_idempotent(self):
        table = VariableTable()
        assert table.intern("x") == 0
        assert table.intern("y") == 1
        assert table.intern("x") == 0
        assert len(table) == 2

    def test_index_and_name_round_trip(self):
        table = VariableTable(["a", "b"])
        assert table.index("b") == 1
        assert table.name(0) == "a"
        assert table.names() == ("a", "b")
        assert "a" in table and "z" not in table

    def test_unknown_name_is_a_solver_error(self):
        with pytest.raises(SolverError, match="unknown variable 'z'"):
            VariableTable().index("z")

    def test_copy_is_independent(self):
        table = VariableTable(["a"])
        clone = table.copy()
        clone.intern("b")
        assert len(table) == 1
        assert len(clone) == 2


class TestSparseRow:
    def test_make_sorts_columns_and_drops_zeros(self):
        row = SparseRow.make({3: 2, 1: -1, 2: 0}, Relation.GE)
        assert row.cols == (1, 3)
        assert row.coeffs == (-1, 2)

    def test_make_normalises_integral_fractions(self):
        row = SparseRow.make({0: Fraction(4, 2)}, Relation.EQ, Fraction(6, 3))
        assert type(row.coeffs[0]) is int
        assert type(row.const) is int

    def test_is_homogeneous(self):
        assert SparseRow.make({0: 1}, Relation.GE).is_homogeneous
        assert not SparseRow.make({0: 1}, Relation.GE, const=-1).is_homogeneous


class TestInternedSystem:
    def test_add_named_interns_on_demand(self):
        system = InternedSystem()
        system.add_named({"x": 1, "y": -1}, Relation.GE, label="x-dominates")
        assert system.num_variables == 2
        assert len(system) == 1
        assert system.rows[0].label == "x-dominates"

    def test_linear_round_trip_preserves_everything(self):
        linear = LinearSystem(variables=["x", "y", "unused"])
        linear.add(
            Constraint(term("x") - term("y"), Relation.GE, label="L1")
        )
        linear.add(Constraint(term("y", Fraction(1, 2)), Relation.GT))
        interned = InternedSystem.from_linear(linear)
        back = interned.to_linear()
        # Declaration order survives, including constraint-free unknowns.
        assert back.variables == linear.variables
        assert len(back) == len(linear)
        for original, converted in zip(linear, back):
            assert converted.expr.coefficients == original.expr.coefficients
            assert converted.relation is original.relation
            assert converted.label == original.label

    def test_with_rows_shares_the_table(self):
        system = InternedSystem()
        system.add_named({"x": 1}, Relation.GE)
        extended = system.with_rows([SparseRow.make({0: 1}, Relation.EQ)])
        assert extended.table is system.table
        assert len(extended) == 2
        assert len(system) == 1  # the original is untouched

    def test_inspection_helpers(self):
        system = InternedSystem()
        system.add_named({"x": 1, "y": 1}, Relation.GT)
        system.add_named({"y": 1}, Relation.LE, const=1)
        assert system.nonzeros() == 3
        assert system.has_strict_rows()
        assert not system.is_homogeneous()


def _system(rows):
    """An InternedSystem over x, y (indices 0, 1) with the given rows."""
    system = InternedSystem(VariableTable(["x", "y"]))
    for entries, relation, const in rows:
        system.add(entries, relation, const)
    return system


class TestSolveInterned:
    def test_minimises_over_a_feasible_polytope(self):
        # x >= 1 written as x - 1 >= 0.
        system = _system([({0: 1}, Relation.GE, -1)])
        result = solve_interned(system, objective={0: 1})
        assert result.status is SparseStatus.OPTIMAL
        assert result.objective_value == 1
        assert result.values[0] == 1

    def test_equality_rows(self):
        # x + y = 4, minimise x: the vertex is (0, 4).
        system = _system([({0: 1, 1: 1}, Relation.EQ, -4)])
        result = solve_interned(system, objective={0: 1})
        assert result.is_feasible
        assert result.values == {0: 0, 1: 4}

    def test_detects_infeasibility(self):
        # x <= -1 with x non-negative.
        system = _system([({0: 1}, Relation.LE, 1)])
        result = solve_interned(system)
        assert result.status is SparseStatus.INFEASIBLE
        assert not result.is_feasible
        assert result.values is None

    def test_detects_unboundedness(self):
        system = _system([])
        result = solve_interned(system, objective={0: 1}, sense="max")
        assert result.status is SparseStatus.UNBOUNDED

    def test_free_variables_go_negative(self):
        # x >= -5 with x sign-free: min x reaches -5.
        system = _system([({0: 1}, Relation.GE, 5)])
        result = solve_interned(system, objective={0: 1}, free_variables=[0])
        assert result.is_feasible
        assert result.values[0] == -5

    def test_presolve_pins_forced_zeros(self):
        # -x >= 0 pins the non-negative x; y is then minimised freely.
        system = _system(
            [({0: -1}, Relation.GE, 0), ({0: 1, 1: 1}, Relation.GE, -2)]
        )
        result = solve_interned(system, objective={1: 1})
        assert result.is_feasible
        assert result.values[0] == 0
        assert result.values[1] == 2

    def test_integral_inputs_keep_integer_arithmetic(self):
        system = _system(
            [({0: 1, 1: 1}, Relation.GE, -4), ({1: 1}, Relation.GE, -1)]
        )
        result = solve_interned(system, objective={0: 1, 1: 1})
        assert result.is_feasible
        # The fast path keeps exact ints wherever values are integral.
        assert all(
            type(value) is int for value in result.values.values()
        ), result.values

    def test_named_values_projects_to_strings(self):
        system = _system([({0: 1}, Relation.GE, -1)])
        result = solve_interned(system, objective={0: 1})
        named = result.named_values(system.table)
        assert named["x"] == Fraction(1)

    def test_strict_rows_are_rejected(self):
        system = _system([({0: 1}, Relation.GT, 0)])
        with pytest.raises(SolverError, match="strict"):
            solve_interned(system)

    def test_bad_sense_is_rejected(self):
        with pytest.raises(SolverError, match="sense"):
            solve_interned(_system([]), objective={0: 1}, sense="upwards")

    def test_undeclared_objective_index_is_rejected(self):
        with pytest.raises(SolverError, match="undeclared"):
            solve_interned(_system([]), objective={9: 1})


class TestHomogeneousHelpers:
    def test_sharpened_rows_apply_cone_scaling(self):
        system = _system(
            [
                ({0: 1}, Relation.GT, 0),
                ({1: 1}, Relation.LT, 0),
                ({0: 1, 1: 1}, Relation.EQ, 0),
            ]
        )
        sharp = sharpened_rows(system)
        assert sharp[0].relation is Relation.GE and sharp[0].const == -1
        assert sharp[1].relation is Relation.LE and sharp[1].const == 1
        assert sharp[2] is system.rows[2]  # non-strict rows pass through

    def test_positive_solution_found(self):
        # x = y with x > 0: the ray x = y = t, witnessed at some t > 0.
        system = _system(
            [({0: 1, 1: -1}, Relation.EQ, 0), ({0: 1}, Relation.GT, 0)]
        )
        witness = interned_positive_solution(system)
        assert witness is not None
        assert witness["x"] == witness["y"] > 0

    def test_positive_solution_infeasible(self):
        system = _system(
            [({0: 1}, Relation.EQ, 0), ({0: 1}, Relation.GT, 0)]
        )
        assert interned_positive_solution(system) is None

    def test_positive_solution_requires_homogeneity(self):
        with pytest.raises(SolverError, match="homogeneous"):
            interned_positive_solution(_system([({0: 1}, Relation.GE, -1)]))

    def test_maximal_support_excludes_forced_zeros(self):
        # x <= 0 (so x = 0) while y is unconstrained above.
        system = _system([({0: 1}, Relation.LE, 0)])
        support, solution = interned_maximal_support(system, ["x", "y"])
        assert support == frozenset({"y"})
        assert solution["x"] == 0
        assert solution["y"] > 0

    def test_maximal_support_rejects_strict_systems(self):
        system = _system([({0: 1}, Relation.GT, 0)])
        with pytest.raises(SolverError, match="non-strict"):
            interned_maximal_support(system, ["x"])

    def test_maximal_support_leaves_the_input_table_clean(self):
        # The shadow variables t#<name> must not leak into the caller's
        # table (the probe runs on a copy).
        system = _system([({0: 1}, Relation.LE, 0)])
        interned_maximal_support(system, ["x", "y"])
        assert system.table.names() == ("x", "y")

    def test_agrees_with_the_dense_tableau_on_the_meeting_system(
        self, meeting_system
    ):
        candidates = meeting_system.consistent_class_unknowns()
        dense_support, _ = dense_maximal_support(
            meeting_system.system, candidates=list(candidates)
        )
        sparse_support, sparse_solution = interned_maximal_support(
            meeting_system.interned, candidates
        )
        assert sparse_support == dense_support
        assert meeting_system.system.is_satisfied_by(sparse_solution)
