"""Differential tests: three independent LP engines must agree.

* the exact simplex (:mod:`repro.solver.simplex`),
* Fourier–Motzkin elimination (:mod:`repro.solver.fourier_motzkin`),
* scipy's HiGHS ``linprog`` (floating point; used only here, as an
  external oracle — the library's decision paths never touch floats).

Random non-strict systems are generated with small integer
coefficients; all engines must return the same feasibility verdict, and
feasible witnesses must actually satisfy the system.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.solver.fourier_motzkin import fm_solve
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation
from repro.solver.simplex import solve_lp

NUM_VARS = 3
VARIABLES = [f"x{i}" for i in range(NUM_VARS)]


@st.composite
def random_systems(draw) -> LinearSystem:
    num_constraints = draw(st.integers(1, 5))
    constraints = []
    for _ in range(num_constraints):
        coeffs = {
            name: draw(st.integers(-3, 3)) for name in VARIABLES
        }
        constant = draw(st.integers(-4, 4))
        relation = draw(
            st.sampled_from([Relation.LE, Relation.GE, Relation.EQ])
        )
        constraints.append(Constraint(LinExpr(coeffs, constant), relation))
    return LinearSystem(constraints, variables=VARIABLES)


def scipy_feasible(system: LinearSystem) -> bool:
    """Feasibility via scipy's HiGHS (floats), variables >= 0."""
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for constraint in system.constraints:
        row = [float(constraint.expr.coefficient(name)) for name in VARIABLES]
        rhs = -float(constraint.expr.constant_term)
        if constraint.relation is Relation.LE:
            a_ub.append(row)
            b_ub.append(rhs)
        elif constraint.relation is Relation.GE:
            a_ub.append([-value for value in row])
            b_ub.append(-rhs)
        else:
            a_eq.append(row)
            b_eq.append(rhs)
    result = linprog(
        c=np.zeros(NUM_VARS),
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(0, None)] * NUM_VARS,
        method="highs",
    )
    return bool(result.success)


@settings(max_examples=150, deadline=None)
@given(random_systems())
def test_simplex_agrees_with_fourier_motzkin(system):
    simplex_verdict = solve_lp(system).is_feasible
    fm_verdict = fm_solve(system).feasible
    assert simplex_verdict == fm_verdict


@settings(max_examples=150, deadline=None)
@given(random_systems())
def test_simplex_agrees_with_scipy(system):
    assert solve_lp(system).is_feasible == scipy_feasible(system)


@settings(max_examples=100, deadline=None)
@given(random_systems())
def test_feasible_witnesses_satisfy_the_system(system):
    result = solve_lp(system)
    if result.is_feasible:
        assert system.is_satisfied_by(result.assignment)
        assert all(value >= 0 for value in result.assignment.values())
    fm_result = fm_solve(system)
    if fm_result.feasible:
        assignment = {
            name: fm_result.assignment.get(name, Fraction(0))
            for name in VARIABLES
        }
        assert system.is_satisfied_by(assignment)


@settings(max_examples=60, deadline=None)
@given(random_systems(), st.integers(0, NUM_VARS - 1))
def test_optimum_matches_scipy(system, objective_index):
    """When both engines find a bounded optimum, the values must agree."""
    objective = LinExpr({VARIABLES[objective_index]: 1})
    exact = solve_lp(system, objective=objective, sense="min")
    if not exact.is_feasible:
        return
    row = [0.0] * NUM_VARS
    row[objective_index] = 1.0
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for constraint in system.constraints:
        coeffs = [
            float(constraint.expr.coefficient(name)) for name in VARIABLES
        ]
        rhs = -float(constraint.expr.constant_term)
        if constraint.relation is Relation.LE:
            a_ub.append(coeffs)
            b_ub.append(rhs)
        elif constraint.relation is Relation.GE:
            a_ub.append([-value for value in coeffs])
            b_ub.append(-rhs)
        else:
            a_eq.append(coeffs)
            b_eq.append(rhs)
    result = linprog(
        c=np.array(row),
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(0, None)] * NUM_VARS,
        method="highs",
    )
    assert result.success
    assert float(exact.objective_value) == pytest.approx(result.fun, abs=1e-7)
