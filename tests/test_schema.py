"""Unit tests for the CR schema model and builder."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import (
    CardinalityDeclaration,
    CoveringStatement,
    DisjointnessStatement,
    IsaStatement,
)
from repro.cr.schema import Card, CRSchema, Relationship, UNBOUNDED
from repro.errors import DuplicateSymbolError, SchemaError, UnknownSymbolError


class TestCard:
    def test_default(self):
        card = Card.default()
        assert card.minc == 0
        assert card.maxc is UNBOUNDED
        assert card.is_default()

    def test_admits(self):
        card = Card(1, 2)
        assert not card.admits(0)
        assert card.admits(1)
        assert card.admits(2)
        assert not card.admits(3)

    def test_unbounded_admits_everything_above_min(self):
        card = Card(2, UNBOUNDED)
        assert card.admits(1_000_000)
        assert not card.admits(1)

    def test_intersect_takes_tightest(self):
        assert Card(1, UNBOUNDED).intersect(Card(0, 2)) == Card(1, 2)
        assert Card(0, 5).intersect(Card(2, 3)) == Card(2, 3)

    def test_min_above_max_is_legal(self):
        # The paper allows contradictory declarations: they force the
        # class to be empty rather than being a syntax error.
        card = Card(3, 1)
        assert not card.admits(2)

    def test_negative_bounds_rejected(self):
        with pytest.raises(SchemaError):
            Card(-1, 2)
        with pytest.raises(SchemaError):
            Card(0, -2)

    def test_pretty(self):
        assert Card(1, UNBOUNDED).pretty() == "(1,inf)"
        assert Card(0, 2).pretty() == "(0,2)"


class TestRelationship:
    def test_roles_and_primary(self):
        rel = Relationship("R", (("U1", "A"), ("U2", "B")))
        assert rel.roles == ("U1", "U2")
        assert rel.arity == 2
        assert rel.primary_class("U1") == "A"

    def test_arity_below_two_rejected(self):
        with pytest.raises(SchemaError):
            Relationship("R", (("U1", "A"),))

    def test_duplicate_role_rejected(self):
        with pytest.raises(SchemaError):
            Relationship("R", (("U1", "A"), ("U1", "B")))

    def test_unknown_role_raises(self):
        rel = Relationship("R", (("U1", "A"), ("U2", "B")))
        with pytest.raises(UnknownSymbolError):
            rel.primary_class("U9")


def simple_schema() -> CRSchema:
    return (
        SchemaBuilder("S")
        .classes("A", "B", "C")
        .isa("B", "A")
        .relationship("R", U1="A", U2="C")
        .card("A", "R", "U1", minc=1)
        .card("B", "R", "U1", maxc=2)
        .build()
    )


class TestSchemaValidation:
    def test_duplicate_class(self):
        with pytest.raises(DuplicateSymbolError):
            SchemaBuilder().cls("A").cls("A")

    def test_duplicate_relationship(self):
        builder = SchemaBuilder().classes("A", "B")
        builder.relationship("R", U1="A", U2="B")
        with pytest.raises(DuplicateSymbolError):
            builder.relationship("R", U3="A", U4="B")

    def test_relationship_with_unknown_class(self):
        builder = SchemaBuilder().cls("A").relationship("R", U1="A", U2="Ghost")
        with pytest.raises(UnknownSymbolError):
            builder.build()

    def test_isa_with_unknown_class(self):
        builder = SchemaBuilder().cls("A").isa("A", "Ghost")
        with pytest.raises(UnknownSymbolError):
            builder.build()

    def test_role_shared_across_relationships_rejected(self):
        builder = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R1", U1="A", U2="B")
            .relationship("R2", U1="A", U3="B")
        )
        with pytest.raises(SchemaError, match="specific to one relationship"):
            builder.build()

    def test_class_and_relationship_name_clash(self):
        builder = SchemaBuilder().classes("A", "R").relationship("R", U1="A", U2="A")
        with pytest.raises(SchemaError):
            builder.build()

    def test_invalid_identifier_rejected(self):
        with pytest.raises(SchemaError):
            SchemaBuilder().cls("not a name").build()

    def test_cardinality_on_non_subclass_rejected(self):
        # C is not <=* A, so it cannot refine A's role.
        builder = (
            SchemaBuilder()
            .classes("A", "C")
            .relationship("R", U1="A", U2="C")
            .card("C", "R", "U1", minc=1)
        )
        with pytest.raises(SchemaError, match="not a .*subclass"):
            builder.build()

    def test_cardinality_refinement_on_subclass_allowed(self):
        schema = simple_schema()
        assert schema.card("B", "R", "U1") == Card(0, 2)

    def test_disjointness_with_single_class_rejected(self):
        with pytest.raises(SchemaError):
            SchemaBuilder().classes("A", "B").disjoint("A")

    def test_covering_requires_coverers(self):
        with pytest.raises(SchemaError):
            SchemaBuilder().classes("A", "B").cover("A")

    def test_extension_statements_with_unknown_classes(self):
        with pytest.raises(UnknownSymbolError):
            SchemaBuilder().classes("A", "B").disjoint("A", "Ghost").build()
        with pytest.raises(UnknownSymbolError):
            SchemaBuilder().classes("A", "B").cover("A", "Ghost").build()


class TestIsaClosure:
    def test_reflexive(self):
        schema = simple_schema()
        assert schema.is_subclass("A", "A")

    def test_direct_and_transitive(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B", "C", "X")
            .isa("C", "B")
            .isa("B", "A")
            .relationship("R", U1="A", U2="X")
            .build()
        )
        assert schema.is_subclass("C", "A")
        assert not schema.is_subclass("A", "C")
        assert schema.ancestors("C") == {"A", "B", "C"}
        assert schema.descendants("A") == {"A", "B", "C"}

    def test_cycles_are_legal(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B", "X")
            .isa("A", "B")
            .isa("B", "A")
            .relationship("R", U1="A", U2="X")
            .build()
        )
        assert schema.is_subclass("A", "B")
        assert schema.is_subclass("B", "A")

    def test_unknown_class_raises(self):
        schema = simple_schema()
        with pytest.raises(UnknownSymbolError):
            schema.is_subclass("A", "Ghost")
        with pytest.raises(UnknownSymbolError):
            schema.ancestors("Ghost")


class TestAccessors:
    def test_card_defaults(self):
        schema = simple_schema()
        assert schema.card("A", "R", "U1") == Card(1, UNBOUNDED)
        assert schema.card("C", "R", "U2") == Card.default()

    def test_card_on_illegal_triple_raises(self):
        schema = simple_schema()
        with pytest.raises(SchemaError):
            schema.card("C", "R", "U1")

    def test_relationship_lookup(self):
        schema = simple_schema()
        assert schema.relationship("R").arity == 2
        with pytest.raises(UnknownSymbolError):
            schema.relationship("Ghost")

    def test_relationship_of_role(self):
        schema = simple_schema()
        assert schema.relationship_of_role("U2").name == "R"
        with pytest.raises(UnknownSymbolError):
            schema.relationship_of_role("U9")

    def test_builder_card_intersects_repeated_declarations(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=1)
            .card("A", "R", "U1", maxc=3)
            .build()
        )
        assert schema.card("A", "R", "U1") == Card(1, 3)


class TestCompoundConsistency:
    def test_upward_closure(self):
        schema = simple_schema()
        assert schema.is_consistent_compound(frozenset({"A"}))
        assert schema.is_consistent_compound(frozenset({"A", "B"}))
        assert not schema.is_consistent_compound(frozenset({"B"}))

    def test_empty_set_inconsistent(self):
        assert not simple_schema().is_consistent_compound(frozenset())

    def test_disjointness_blocks_cooccurrence(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .disjoint("A", "B")
            .build()
        )
        assert not schema.is_consistent_compound(frozenset({"A", "B"}))
        assert schema.is_consistent_compound(frozenset({"A"}))

    def test_covering_requires_a_coverer(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B", "C")
            .isa("B", "A")
            .isa("C", "A")
            .relationship("R", U1="A", U2="A")
            .cover("A", "B", "C")
            .build()
        )
        assert not schema.is_consistent_compound(frozenset({"A"}))
        assert schema.is_consistent_compound(frozenset({"A", "B"}))
        assert schema.is_consistent_compound(frozenset({"A", "C"}))


class TestConstraintSurgery:
    def test_constraints_lists_everything(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .isa("B", "A")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=1)
            .disjoint("A", "B")
            .cover("A", "B")
            .build()
        )
        statements = schema.constraints()
        kinds = {type(statement) for statement in statements}
        assert kinds == {
            IsaStatement,
            CardinalityDeclaration,
            DisjointnessStatement,
            CoveringStatement,
        }
        assert len(statements) == 4

    def test_without_constraints_removes_isa(self):
        schema = simple_schema()
        reduced = schema.without_constraints([IsaStatement("B", "A")])
        assert not reduced.is_subclass("B", "A")

    def test_removing_isa_drops_orphaned_refinement(self):
        schema = simple_schema()
        reduced = schema.without_constraints([IsaStatement("B", "A")])
        # B's refinement on R.U1 depended on B <= A; it must be gone.
        assert ("B", "R", "U1") not in reduced.declared_cards

    def test_without_constraints_removes_card(self):
        schema = simple_schema()
        declaration = CardinalityDeclaration("A", "R", "U1", Card(1, UNBOUNDED))
        reduced = schema.without_constraints([declaration])
        assert ("A", "R", "U1") not in reduced.declared_cards
        # The ISA statement survives.
        assert reduced.is_subclass("B", "A")

    def test_unknown_statements_ignored(self):
        schema = simple_schema()
        reduced = schema.without_constraints([IsaStatement("A", "C")])
        assert reduced.isa_statements == schema.isa_statements
