"""Randomized parity evidence for the pruned zero-set search.

The pruned engine's contract is byte-identity with the naive
Theorem-3.4 walk — verdict, integer witness, and support — with only
the number of LPs solved allowed to differ.  These properties drive
the symmetric sibling family of :func:`tests.strategies.symmetric_schemas`
(guaranteed non-trivial column orbits, naive side still affordable)
through both engines and compare, including across a two-worker pool,
and re-verify every learned Farkas nogood against its rebuilt source
system.

Pool-backed examples are deliberately few — each pays a real spawn-pool
startup — mirroring ``test_parallel_properties.py``.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cr.expansion import Expansion
from repro.cr.satisfiability import class_targets, decision_problem
from repro.cr.system import build_system
from repro.runtime.fallback import DEFAULT_FALLBACK, chain_for
from repro.solver.pruned import (
    NogoodStore,
    nogood_source_system,
    pruned_zero_set_search,
)
from repro.solver.registry import get_backend

from tests.strategies import symmetric_schemas

PARITY = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
POOLED = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def drawn_problem(data, max_siblings: int = 3):
    schema, _ = data.draw(symmetric_schemas(max_siblings=max_siblings))
    cr_system = build_system(Expansion(schema), mode="pruned")
    cls = data.draw(st.sampled_from(schema.classes))
    return decision_problem(cr_system, class_targets(cr_system, cls))


@PARITY
@given(data=st.data())
def test_pruned_matches_the_naive_oracle(data):
    problem = drawn_problem(data)
    chain = chain_for(DEFAULT_FALLBACK)
    expected = get_backend("naive").decide_acceptable(problem, chain=chain)
    actual = get_backend("pruned").decide_acceptable(problem, chain=chain)
    assert actual == expected


@POOLED
@given(data=st.data())
def test_two_workers_reproduce_the_serial_pruned_answer(data):
    problem = drawn_problem(data, max_siblings=2)
    chain = chain_for(DEFAULT_FALLBACK)
    serial = get_backend("pruned").decide_acceptable(problem, chain=chain)
    pooled = get_backend("pruned").decide_acceptable(
        problem, chain=chain, jobs=2
    )
    assert pooled == serial


@PARITY
@given(data=st.data())
def test_every_installed_nogood_reverifies_against_its_source(data):
    """Soundness of the learning step, empirically: each nogood's Farkas
    certificate must still check out against the rebuilt sharpened
    ``Ψ_Z`` it was extracted from, and the generalised support must be
    consistent with that source zero-set (zeros kept zero, positives
    genuinely outside it)."""
    problem = drawn_problem(data)
    store = NogoodStore()
    pruned_zero_set_search(
        problem, chain=chain_for(DEFAULT_FALLBACK), store=store
    )
    for nogood in store.nogoods:
        source = set(nogood.source)
        assert nogood.zeros <= source
        assert not (nogood.positives & source)
        assert nogood.certificate.verify(
            nogood_source_system(problem, nogood)
        )
