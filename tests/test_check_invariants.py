"""Unit tests for ``tools/check_invariants.py``, the repo-wide AST
lint that keeps the exact-arithmetic kernel honest."""

from __future__ import annotations

import importlib.util
import pathlib
import sys
import textwrap

ROOT = pathlib.Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_invariants", ROOT / "tools" / "check_invariants.py"
)
assert _SPEC is not None and _SPEC.loader is not None
check_invariants = importlib.util.module_from_spec(_SPEC)
sys.modules["check_invariants"] = check_invariants
_SPEC.loader.exec_module(check_invariants)

KERNEL_PATH = "repro/solver/core.py"


def violations(source, path=KERNEL_PATH):
    return check_invariants.check_source(textwrap.dedent(source), path)


def rules(source, path=KERNEL_PATH):
    return [violation.rule for violation in violations(source, path)]


class TestFloatBan:
    def test_float_literal_flagged(self):
        assert rules("x = 0.5\n") == ["R1"]

    def test_float_call_flagged(self):
        assert rules("y = float(3)\n") == ["R1"]

    def test_math_module_flagged(self):
        assert rules("import math\nz = math.sqrt(2)\n") == ["R1"]

    def test_fractions_are_fine(self):
        assert rules(
            """
            from fractions import Fraction

            half = Fraction(1, 2)
            """
        ) == []

    def test_rule_only_applies_to_the_exact_kernel(self):
        assert rules("x = 0.5\n", path="repro/cli.py") == []
        assert rules("x = 0.5\n", path="repro/linalg/gauss.py") == ["R1"]


class TestUnbudgetedLoops:
    def test_bare_while_true_flagged(self):
        assert rules(
            """
            def spin():
                while True:
                    pass
            """
        ) == ["R2"]

    def test_budget_charged_loop_is_fine(self):
        assert rules(
            """
            def pivot(budget):
                while True:
                    budget.charge(1)
            """
        ) == []

    def test_bounded_loops_are_fine(self):
        assert rules(
            """
            def scan(rows):
                for row in rows:
                    while row:
                        row = row.tail
            """
        ) == []


class TestPopitemBan:
    def test_popitem_flagged_in_kernel_modules(self):
        source = "state.popitem()\n"
        assert rules(source, path="repro/solver/simplex.py") == ["R3"]
        assert rules(source, path="repro/linalg/gauss.py") == ["R3"]

    def test_popitem_allowed_outside_the_kernel(self):
        assert rules("cache.popitem(last=False)\n", path="repro/session/cache.py") == []


PARALLEL_PATH = "repro/parallel/pool.py"


class TestStartMethodBan:
    def test_fork_context_flagged(self):
        source = 'ctx = multiprocessing.get_context("fork")\n'
        assert rules(source, path=PARALLEL_PATH) == ["R4"]

    def test_forkserver_flagged(self):
        source = 'multiprocessing.set_start_method("forkserver")\n'
        assert rules(source, path=PARALLEL_PATH) == ["R4"]

    def test_default_context_flagged(self):
        # A bare get_context() inherits the platform default, which is
        # fork on Linux — the start method must be spelled out.
        source = "ctx = multiprocessing.get_context()\n"
        assert rules(source, path=PARALLEL_PATH) == ["R4"]

    def test_method_keyword_checked(self):
        source = 'multiprocessing.set_start_method(method="fork")\n'
        assert rules(source, path=PARALLEL_PATH) == ["R4"]

    def test_spawn_is_fine(self):
        source = 'ctx = multiprocessing.get_context("spawn")\n'
        assert rules(source, path=PARALLEL_PATH) == []

    def test_rule_scoped_to_the_parallel_package(self):
        source = 'ctx = multiprocessing.get_context("fork")\n'
        assert rules(source, path="repro/cli.py") == []


class TestUndeadlinedWaits:
    def test_bare_result_flagged(self):
        assert rules("value = future.result()\n", path=PARALLEL_PATH) == [
            "R5"
        ]

    def test_bare_wait_flagged(self):
        source = "done, pending = wait(futures)\n"
        assert rules(source, path=PARALLEL_PATH) == ["R5"]

    def test_bare_as_completed_flagged(self):
        source = "for future in as_completed(futures):\n    pass\n"
        assert rules(source, path=PARALLEL_PATH) == ["R5"]

    def test_bare_pool_map_flagged(self):
        source = "results = pool.map(task, items)\n"
        assert rules(source, path=PARALLEL_PATH) == ["R5"]

    def test_timeout_keyword_satisfies_the_rule(self):
        source = """
            value = future.result(timeout=0.05)
            done, pending = wait(futures, timeout=0.05)
            """
        assert rules(source, path=PARALLEL_PATH) == []

    def test_shutdown_wait_keyword_is_not_a_wait_call(self):
        source = "executor.shutdown(wait=True, cancel_futures=True)\n"
        assert rules(source, path=PARALLEL_PATH) == []

    def test_rule_scoped_to_the_parallel_package(self):
        assert rules("value = future.result()\n", path="repro/cli.py") == []


STORE_PATH = "repro/store/store.py"


class TestNonatomicWriteBan:
    def test_write_mode_open_flagged(self):
        source = 'handle = open(path, "w")\n'
        assert rules(source, path=STORE_PATH) == ["R6"]

    def test_binary_append_and_exclusive_modes_flagged(self):
        assert rules('open(path, "wb")\n', path=STORE_PATH) == ["R6"]
        assert rules('open(path, "a")\n', path=STORE_PATH) == ["R6"]
        assert rules('open(path, "x")\n', path=STORE_PATH) == ["R6"]
        assert rules('open(path, "r+")\n', path=STORE_PATH) == ["R6"]

    def test_mode_keyword_checked(self):
        source = 'open(path, mode="w")\n'
        assert rules(source, path=STORE_PATH) == ["R6"]

    def test_computed_mode_flagged(self):
        # A mode the AST cannot prove read-only counts as a write.
        source = "open(path, mode)\n"
        assert rules(source, path=STORE_PATH) == ["R6"]

    def test_path_write_helpers_flagged(self):
        assert rules('path.write_text("x")\n', path=STORE_PATH) == ["R6"]
        assert rules('path.write_bytes(b"x")\n', path=STORE_PATH) == ["R6"]

    def test_reads_are_fine(self):
        source = """
            blob = path.read_bytes()
            with open(path) as handle:
                handle.read()
            with open(path, "rb") as handle:
                handle.read()
            """
        assert rules(source, path=STORE_PATH) == []

    def test_the_atomic_helper_is_exempt(self):
        source = 'open(path, "wb")\n'
        assert rules(source, path="repro/store/atomic.py") == []

    def test_rule_scoped_to_the_store_package(self):
        source = 'open(path, "w")\n'
        assert rules(source, path="repro/cli.py") == []
        assert rules(source, path="repro/store/locks.py") == ["R6"]


COMPONENTS_PATH = "repro/components/decompose.py"


class TestWholeSchemaExpansionBan:
    def test_direct_expansion_call_flagged(self):
        source = "expansion = Expansion(schema)\n"
        assert rules(source, path=COMPONENTS_PATH) == ["R7"]

    def test_build_system_call_flagged(self):
        source = "system = build_system(expansion)\n"
        assert rules(source, path=COMPONENTS_PATH) == ["R7"]

    def test_attribute_call_form_flagged(self):
        # Reaching the banned entry points through the module object
        # (`expansion_mod.Expansion(...)`) is the same violation.
        source = "expansion = cr_expansion.Expansion(schema)\n"
        assert rules(source, path=COMPONENTS_PATH) == ["R7"]

    def test_delegating_to_sessions_is_fine(self):
        source = """
            session = ReasoningSession(component.schema, cache=cache)
            entry = cache.artifacts(component.schema, fingerprint)
            """
        assert rules(source, path=COMPONENTS_PATH) == []

    def test_rule_scoped_to_the_component_package(self):
        source = "expansion = Expansion(schema)\n"
        assert rules(source, path="repro/cli.py") == []
        assert rules(source, path="repro/components/session.py") == ["R7"]


class TestDiagnostics:
    def test_violations_render_file_line_rule(self):
        (violation,) = violations("x = 0.5\n")
        rendered = violation.render()
        assert rendered.startswith(f"{KERNEL_PATH}:1: R1")

    def test_line_numbers_point_at_the_offence(self):
        (violation,) = violations("a = 1\nb = 2\nc = 3.0\n")
        assert violation.line == 3


class TestRepoIsClean:
    def test_the_shipped_kernel_passes(self):
        checked = list(check_invariants.iter_checked_files())
        assert checked, "invariant scope resolved to no files"
        problems = [
            violation
            for path in checked
            for violation in check_invariants.check_file(path)
        ]
        assert problems == [], [v.render() for v in problems]
