"""Metamorphic properties of the decision procedure and session layer.

Each test applies a meaning-preserving transformation to a random
schema and asserts the reasoner cannot tell the difference:

* **renaming** — class/relationship/role names are arbitrary labels;
  verdicts must commute with any injective renaming;
* **redundant ISA edge** — declaring an edge already in the
  reflexive-transitive ISA closure changes no verdict;
* **duplicate constraints** — re-declaring a disjointness group or a
  covering is a no-op; the canonical form dedups them, so even the
  schema *fingerprint* is unchanged and a shared session cache serves
  the duplicate schema without building anything;
* **cold vs. warm** — a fresh session, a warm session sharing its
  cache, and the stateless API all return the same verdicts.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.cr.implication import implies
from repro.cr.satisfiability import is_class_satisfiable, satisfiable_classes
from repro.cr.schema import CRSchema, Relationship
from repro.session import ReasoningSession, SessionCache, schema_fingerprint
from tests.strategies import (
    implication_queries_for,
    property_max_examples,
    query_mixes,
    schemas,
)


def _renamed(schema: CRSchema) -> tuple[CRSchema, dict[str, str]]:
    """``schema`` with every class/relationship/role injectively renamed."""
    cls_map = {cls: f"X{cls}" for cls in schema.classes}
    relationships = [
        Relationship(
            f"X{rel.name}",
            tuple((f"X{role}", cls_map[cls]) for role, cls in rel.signature),
        )
        for rel in schema.relationships
    ]
    cards = {
        (cls_map[cls], f"X{rel}", f"X{role}"): card
        for (cls, rel, role), card in schema.declared_cards.items()
    }
    renamed = CRSchema(
        classes=[cls_map[cls] for cls in schema.classes],
        relationships=relationships,
        isa=[(cls_map[sub], cls_map[sup]) for sub, sup in schema.isa_statements],
        cards=cards,
        disjointness=[
            frozenset(cls_map[cls] for cls in group)
            for group in schema.disjointness_groups
        ],
        coverings=[
            (cls_map[covered], frozenset(cls_map[c] for c in coverers))
            for covered, coverers in schema.coverings
        ],
        name=f"{schema.name}Renamed",
    )
    return renamed, cls_map


@settings(max_examples=property_max_examples())
@given(data=st.data())
def test_renaming_invariance(data):
    schema = data.draw(schemas(allow_extensions=True))
    renamed, cls_map = _renamed(schema)
    original = satisfiable_classes(schema)
    assert satisfiable_classes(renamed) == {
        cls_map[cls]: verdict for cls, verdict in original.items()
    }


# Most random DAGs have no *undeclared* transitive edge, so this test
# discards a large share of draws; that is inherent, not a strategy bug.
@settings(
    max_examples=property_max_examples(),
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
@given(data=st.data())
def test_redundant_derivable_isa_edge_is_invisible(data):
    schema = data.draw(schemas())
    declared = set(schema.isa_statements)
    derivable = [
        (sub, sup)
        for sub in schema.classes
        for sup in schema.classes
        if sub != sup
        and schema.is_subclass(sub, sup)
        and (sub, sup) not in declared
    ]
    assume(derivable)
    edge = data.draw(st.sampled_from(derivable))
    redundant = CRSchema(
        classes=schema.classes,
        relationships=schema.relationships,
        isa=tuple(schema.isa_statements) + (edge,),
        cards=schema.declared_cards,
        disjointness=schema.disjointness_groups,
        coverings=schema.coverings,
        name=f"{schema.name}Redundant",
    )
    assert satisfiable_classes(redundant) == satisfiable_classes(schema)
    query = data.draw(implication_queries_for(schema))
    assert (
        implies(redundant, query).implied == implies(schema, query).implied
    )


@settings(max_examples=property_max_examples())
@given(data=st.data())
def test_duplicate_constraints_share_a_fingerprint(data):
    schema = data.draw(schemas(allow_extensions=True))
    duplicated = CRSchema(
        classes=schema.classes,
        relationships=schema.relationships,
        isa=schema.isa_statements,
        cards=schema.declared_cards,
        disjointness=tuple(schema.disjointness_groups) * 2,
        coverings=tuple(schema.coverings) * 2,
        name=f"{schema.name}Duplicated",
    )
    # The canonical form dedups constraint sets (and ignores the schema
    # name), so the duplicate is literally the same cache key ...
    assert schema_fingerprint(duplicated) == schema_fingerprint(schema)

    # ... which means a shared cache answers it without building again.
    cache = SessionCache()
    first = ReasoningSession(schema, cache=cache)
    verdicts = first.satisfiable_classes()
    builds_before = cache.stats.expansion_builds
    second = ReasoningSession(duplicated, cache=cache)
    assert second.satisfiable_classes() == verdicts
    assert cache.stats.expansion_builds == builds_before


def _session_answers(session: ReasoningSession, queries: list) -> list:
    """Answer a mixed ``(kind, payload)`` batch through the session."""
    answers = []
    for kind, payload in queries:
        if kind == "sat":
            answers.append(session.is_class_satisfiable(payload).satisfiable)
        else:
            answers.append(session.implies(payload).implied)
    return answers


@settings(max_examples=property_max_examples())
@given(data=st.data())
def test_cold_and_warm_sessions_agree_with_stateless_api(data):
    schema = data.draw(schemas(allow_extensions=True))
    queries = data.draw(query_mixes(schema, max_size=3))
    cache = SessionCache()
    cold = ReasoningSession(schema, cache=cache)
    cold_answers = _session_answers(cold, queries)
    cold_verdicts = cold.satisfiable_classes()

    # A second session on the shared cache answers everything without
    # rebuilding a single stage — whether the cold pass built the full
    # pipeline or the static analyzer short-circuited it, the warm pass
    # rides whatever state the cold pass left behind.
    builds_before = (
        cache.stats.analysis_runs,
        cache.stats.expansion_builds,
        cache.stats.fixpoint_runs,
    )
    warm = ReasoningSession(schema, cache=cache)
    assert _session_answers(warm, queries) == cold_answers
    assert warm.satisfiable_classes() == cold_verdicts
    assert (
        cache.stats.analysis_runs,
        cache.stats.expansion_builds,
        cache.stats.fixpoint_runs,
    ) == builds_before

    assert cold_answers == [
        is_class_satisfiable(schema, payload).satisfiable
        if kind == "sat"
        else implies(schema, payload).implied
        for kind, payload in queries
    ]
    assert cold_verdicts == satisfiable_classes(schema)
