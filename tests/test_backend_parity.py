"""Cross-backend parity: every registered backend answers alike.

The registry promises that the choice of primary backend is an
*operational* decision — speed, certificates, independence — never a
semantic one.  These properties pin that promise on random schemas:
pinning each registered backend in turn (exactly what ``--backend`` and
``REPRO_BACKEND`` do) must leave every satisfiability verdict
unchanged, and the raw LP backends must compute identical maximal
supports on the generated systems.

The strategies keep schemas to at most four classes, so the consistent
class unknowns stay below the naive engine's size gate and even the
Theorem-3.4 enumeration terminates quickly.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cr.expansion import Expansion
from repro.errors import SolverError
from repro.cr.satisfiability import satisfiable_classes
from repro.cr.system import build_system
from repro.solver.registry import backend_names, get_backend, pin_backend

from tests.strategies import schemas

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

LP_BACKENDS = tuple(
    name
    for name in backend_names()
    if not get_backend(name).capabilities.exponential
)


@SLOW
@given(data=st.data())
def test_every_backend_yields_the_same_satisfiability_verdicts(data):
    schema = data.draw(schemas())
    expansion = Expansion(schema)
    reference = satisfiable_classes(schema, expansion=expansion)
    assert all(isinstance(v, bool) for v in reference.values())
    for name in backend_names():
        try:
            with pin_backend(name):
                verdicts = satisfiable_classes(schema, expansion=expansion)
        except SolverError:
            # Declared degradation, not disagreement: a size-gated
            # backend (Fourier–Motzkin blowing its constraint budget)
            # may refuse a hard draw outright — pinning it leaves the
            # chain nowhere to degrade to.  It must never *answer*
            # differently, which is what the assertion below pins.
            continue
        assert verdicts == reference, f"backend {name} disagrees"


@SLOW
@given(data=st.data())
def test_lp_backends_compute_the_same_maximal_support(data):
    schema = data.draw(schemas())
    cr_system = build_system(Expansion(schema), mode="pruned")
    candidates = cr_system.consistent_class_unknowns()
    # The contract is definitive on the *candidates* only: unknowns
    # outside the probe set may be positive in one backend's witness
    # and zero in another's, and both witnesses are correct.
    probed = set(candidates)
    supports = {}
    for name in LP_BACKENDS:
        try:
            support, _ = get_backend(name).maximal_support(
                cr_system.interned, candidates
            )
        except SolverError:
            # Declared degradation (Fourier–Motzkin blowing its
            # constraint budget): the chain contract says "ask the next
            # backend", never "give a different answer".
            continue
        supports[name] = support & probed
    # The simplex engines have no size gate and must always answer.
    assert {"sparse-simplex", "dense-simplex"} <= set(supports)
    reference = supports["sparse-simplex"]
    assert all(
        support == reference for support in supports.values()
    ), supports
