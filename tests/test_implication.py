"""Unit tests for the implication engine (Section 4 / Figure 7)."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.checker import check_model
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.implication import (
    implies,
    implies_disjointness,
    implies_isa,
    implies_max_cardinality,
    implies_min_cardinality,
    statement_holds,
)
from repro.errors import ReproError, SchemaError

ENGINES = ["fixpoint", "naive"]


class TestFigure7:
    """The paper's three showcase inferences, plus controls."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_speaker_isa_discussant_is_implied(self, meeting, engine):
        # Surprising but true in finite models: |Talk| = |Speaker| =
        # |Discussant| is forced, and Discussant <= Speaker, so the two
        # classes coincide extensionally.
        assert implies_isa(meeting, "Speaker", "Discussant", engine).implied

    @pytest.mark.parametrize("engine", ENGINES)
    def test_maxc_talk_participates_is_implied(self, meeting, engine):
        assert implies_max_cardinality(
            meeting, "Talk", "Participates", "U4", 1, engine
        ).implied

    @pytest.mark.parametrize("engine", ENGINES)
    def test_maxc_speaker_holds_is_implied(self, meeting, engine):
        assert implies_max_cardinality(
            meeting, "Speaker", "Holds", "U1", 1, engine
        ).implied

    def test_declared_isa_is_implied(self, meeting):
        assert implies_isa(meeting, "Discussant", "Speaker").implied

    def test_reflexive_isa_is_implied(self, meeting):
        assert implies_isa(meeting, "Talk", "Talk").implied

    def test_non_implications_as_controls(self, meeting):
        assert not implies_isa(meeting, "Speaker", "Talk").implied
        assert not implies_isa(meeting, "Talk", "Speaker").implied
        # Weaker maxc bounds ARE implied; a minc of 2 is not.
        assert implies_max_cardinality(
            meeting, "Speaker", "Holds", "U1", 5
        ).implied
        assert not implies_min_cardinality(
            meeting, "Discussant", "Holds", "U1", 2
        ).implied

    def test_implied_minc_from_declaration(self, meeting):
        assert implies_min_cardinality(
            meeting, "Speaker", "Holds", "U1", 1
        ).implied
        # Discussants inherit the speakers' minimum.
        assert implies_min_cardinality(
            meeting, "Discussant", "Holds", "U1", 1
        ).implied


class TestCountermodels:
    def test_isa_countermodel_is_a_model_violating_the_query(self, meeting):
        result = implies_isa(meeting, "Speaker", "Talk")
        assert not result.implied
        model = result.countermodel
        assert model is not None
        assert check_model(meeting, model) == []
        assert not statement_holds(model, IsaStatement("Speaker", "Talk"))

    def test_min_cardinality_countermodel(self, meeting):
        query_value = 2
        result = implies_min_cardinality(
            meeting, "Discussant", "Holds", "U1", query_value
        )
        assert not result.implied
        model = result.countermodel
        assert check_model(meeting, model) == []
        statement = MinCardinalityStatement(
            "Discussant", "Holds", "U1", query_value
        )
        assert not statement_holds(model, statement)
        # The auxiliary class C_exc must not leak into the counter-model.
        assert "C_exc" not in model.class_extensions

    def test_max_cardinality_countermodel(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .build()
        )
        result = implies_max_cardinality(schema, "A", "R", "U1", 1)
        assert not result.implied
        model = result.countermodel
        assert check_model(schema, model) == []
        assert not statement_holds(
            model, MaxCardinalityStatement("A", "R", "U1", 1)
        )

    def test_implied_statement_has_no_countermodel(self, meeting):
        result = implies_isa(meeting, "Discussant", "Speaker")
        assert result.implied
        assert result.countermodel is None


class TestCardinalityQueryValidation:
    def test_minc_zero_is_vacuously_implied(self, meeting):
        result = implies_min_cardinality(meeting, "Talk", "Holds", "U2", 0)
        assert result.implied

    def test_query_on_non_subclass_rejected(self, meeting):
        with pytest.raises(SchemaError):
            implies_min_cardinality(meeting, "Speaker", "Participates", "U3", 1)
        with pytest.raises(SchemaError):
            implies_max_cardinality(meeting, "Talk", "Holds", "U1", 1)

    def test_exceptional_class_name_cannot_collide(self):
        # A user class literally named C_exc must not break the reduction.
        schema = (
            SchemaBuilder()
            .classes("C_exc", "B")
            .relationship("R", U1="C_exc", U2="B")
            .card("C_exc", "R", "U1", minc=1)
            .build()
        )
        result = implies_min_cardinality(schema, "C_exc", "R", "U1", 1)
        assert result.implied


class TestUnsatisfiableSchemas:
    def test_everything_is_implied_by_an_unsatisfiable_schema(
        self, refined_meeting
    ):
        # All finite models have every class empty, so any statement holds.
        assert implies_isa(refined_meeting, "Speaker", "Talk").implied
        assert implies_min_cardinality(
            refined_meeting, "Speaker", "Holds", "U1", 100
        ).implied
        assert implies_max_cardinality(
            refined_meeting, "Speaker", "Holds", "U1", 0
        ).implied


class TestDisjointnessImplication:
    def test_unrelated_classes_not_disjoint_by_default(self, meeting):
        result = implies_disjointness(meeting, ["Speaker", "Talk"])
        assert not result.implied
        model = result.countermodel
        assert check_model(meeting, model) == []
        assert not statement_holds(
            model, DisjointnessStatement(frozenset({"Speaker", "Talk"}))
        )

    def test_declared_disjointness_is_implied(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .disjoint("A", "B")
            .build()
        )
        assert implies_disjointness(schema, ["A", "B"]).implied

    def test_subclass_never_disjoint_from_its_superclass(self, meeting):
        # Any model populating Discussant puts the same instances in
        # Speaker.  But is Discussant satisfiable?  Yes — so disjointness
        # cannot be implied.
        assert not implies_disjointness(
            meeting, ["Discussant", "Speaker"]
        ).implied

    def test_needs_two_classes(self, meeting):
        with pytest.raises(SchemaError):
            implies_disjointness(meeting, ["Speaker"])


class TestDispatcher:
    def test_dispatch_each_statement_kind(self, meeting):
        assert implies(meeting, IsaStatement("Discussant", "Speaker")).implied
        assert implies(
            meeting, MaxCardinalityStatement("Speaker", "Holds", "U1", 1)
        ).implied
        assert implies(
            meeting, MinCardinalityStatement("Speaker", "Holds", "U1", 1)
        ).implied
        assert not implies(
            meeting, DisjointnessStatement(frozenset({"Speaker", "Talk"}))
        ).implied

    def test_pretty_output(self, meeting):
        result = implies(meeting, IsaStatement("Speaker", "Discussant"))
        assert result.pretty() == "S |= Speaker isa Discussant"
        result = implies(meeting, IsaStatement("Speaker", "Talk"))
        assert result.pretty() == "S |/= Speaker isa Talk"

    def test_unsupported_query_rejected(self, meeting):
        with pytest.raises(ReproError):
            implies(meeting, "not a statement")


class TestStatementHolds:
    def test_isa(self, meeting):
        from repro.cr.interpretation import Interpretation

        interp = Interpretation.build({"Speaker": ["x"], "Discussant": ["x"]})
        assert statement_holds(interp, IsaStatement("Discussant", "Speaker"))
        assert statement_holds(interp, IsaStatement("Speaker", "Discussant"))
        interp2 = Interpretation.build({"Speaker": ["x", "y"], "Discussant": ["x"]})
        assert not statement_holds(interp2, IsaStatement("Speaker", "Discussant"))

    def test_cardinality_statements(self):
        from repro.cr.interpretation import Interpretation

        interp = Interpretation.build(
            {"A": ["a"], "B": ["b"]},
            {"R": [{"U1": "a", "U2": "b"}]},
        )
        assert statement_holds(interp, MinCardinalityStatement("A", "R", "U1", 1))
        assert not statement_holds(
            interp, MinCardinalityStatement("A", "R", "U1", 2)
        )
        assert statement_holds(interp, MaxCardinalityStatement("A", "R", "U1", 1))
        assert not statement_holds(
            interp, MaxCardinalityStatement("A", "R", "U1", 0)
        )

    def test_disjointness(self):
        from repro.cr.interpretation import Interpretation

        interp = Interpretation.build({"A": ["x"], "B": ["y"]})
        assert statement_holds(
            interp, DisjointnessStatement(frozenset({"A", "B"}))
        )

    def test_unsupported(self):
        from repro.cr.interpretation import Interpretation

        with pytest.raises(ReproError):
            statement_holds(Interpretation.empty(), object())
