"""Unit tests for the figure renderers."""

from __future__ import annotations

from repro.cr.implication import implies_isa
from repro.cr.interpretation import Interpretation
from repro.render import (
    render_expansion,
    render_inferences,
    render_interpretation,
    render_schema,
    render_solution,
    render_system,
)


class TestRenderSchema:
    def test_figure3_sections_present(self, meeting):
        text = render_schema(meeting)
        assert "C = {Speaker, Discussant, Talk};" in text
        assert "R = {Holds, Participates};" in text
        assert "U = {U1, U2, U3, U4};" in text
        assert "Sisa = {Discussant <= Speaker};" in text
        assert "Holds = <U1: Speaker, U2: Talk>;" in text

    def test_figure3_cardinality_lines(self, meeting):
        text = render_schema(meeting)
        for line in [
            "minc(Speaker, Holds, U1) = 1;",
            "maxc(Discussant, Holds, U1) = 2;",
            "minc(Talk, Holds, U2) = 1;",
            "maxc(Talk, Holds, U2) = 1;",
            "minc(Discussant, Participates, U3) = 1;",
            "maxc(Discussant, Participates, U3) = 1;",
            "minc(Talk, Participates, U4) = 1;",
        ]:
            assert line in text

    def test_extensions_rendered(self, meeting):
        from repro.ext import with_covering, with_disjointness

        extended = with_covering(
            with_disjointness(meeting, ("Speaker", "Talk")),
            "Speaker",
            "Discussant",
        )
        text = render_schema(extended)
        assert "disjoint(Speaker, Talk);" in text
        assert "cover(Speaker by Discussant);" in text


class TestRenderExpansion:
    def test_figure4_compound_class_listing(self, meeting_expansion):
        text = render_expansion(meeting_expansion)
        assert "C1 = {S}" in text
        assert "C4 = {S,D}" in text
        assert "C7 = {S,D,T}" in text
        assert "Cc = {C1, C3, C4, C5, C7};" in text

    def test_figure4_lifted_cardinalities(self, meeting_expansion):
        text = render_expansion(meeting_expansion)
        assert "minc(C1, Holds, U1) = 1;" in text
        assert "maxc(C4, Holds, U1) = 2;" in text
        assert "maxc(C7, Participates, U3) = 1;" in text

    def test_figure4_consistent_relationships(self, meeting_expansion):
        text = render_expansion(meeting_expansion)
        assert "H<1,3>" in text
        assert "P<7,7>" in text
        assert "H<2,3>" not in text  # C2 is inconsistent


class TestRenderSystem:
    def test_figure5_structure(self, meeting_literal_system):
        text = render_system(meeting_literal_system)
        assert "class unknowns: c1, c2, c3, c4, c5, c6, c7" in text
        assert "inconsistent compound classes (= 0)" in text
        assert "lifted minc disequations" in text
        assert "c4 <= h43 + h45 + h47" in text
        assert "2*c4 >= h43 + h45 + h47" in text

    def test_pruned_system_has_no_zero_sections(self, meeting_system):
        text = render_system(meeting_system)
        assert "inconsistent" not in text
        assert "non-negativity" in text


class TestRenderSolutionAndInterpretation:
    def test_solution_rendering_skips_zeros(self):
        text = render_solution({"c3": 2, "c4": 2, "h43": 0})
        assert "X(c3) = 2;" in text
        assert "h43" not in text

    def test_solution_rendering_all_zero(self):
        assert "empty solution" in render_solution({"c1": 0})

    def test_interpretation_rendering_figure6_style(self):
        interp = Interpretation.build(
            {"Speaker": ["John", "Mary"], "Talk": ["talkJ"]},
            {"Holds": [{"U1": "John", "U2": "talkJ"}]},
        )
        text = render_interpretation(interp)
        assert "Delta = {John, Mary, talkJ};" in text
        assert "Speaker^I = {John, Mary};" in text
        assert "Holds^I = {<U1: John, U2: talkJ>};" in text


class TestRenderInferences:
    def test_figure7_listing(self, meeting):
        results = [
            implies_isa(meeting, "Speaker", "Discussant"),
            implies_isa(meeting, "Speaker", "Talk"),
        ]
        text = render_inferences(results)
        assert "S |= Speaker isa Discussant" in text
        assert "S |/= Speaker isa Talk" in text
