"""Unit tests for the parallel decision fabric (:mod:`repro.parallel`).

The pure plumbing — job resolution, chunking, budget splitting and
aggregation, stage-timing merges, batch partitioning — is tested
directly.  The spawn-pool paths are covered by a small number of
end-to-end parity checks against the serial oracle (each one pays a
real process-pool spawn, so they are few and shared where possible);
the broader randomized parity evidence lives in
``test_parallel_properties.py``.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.cr.constraints import (
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.satisfiability import is_class_satisfiable, satisfiable_classes
from repro.dsl import serialize_schema
from repro.errors import BudgetExceededError, ReproError
from repro.paper import meeting_schema
from repro.parallel import chunk_evenly, resolve_jobs, worker_caps
from repro.parallel.fanout import partition_queries, run_parallel_batch
from repro.pipeline import PipelineRun
from repro.runtime.budget import Budget
from repro.runtime.outcome import Verdict


class TestResolveJobs:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_var_consulted_without_a_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_blank_env_var_means_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert resolve_jobs() == 1

    def test_garbage_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ReproError, match="REPRO_JOBS"):
            resolve_jobs()

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ReproError, match="jobs"):
            resolve_jobs(0)


class TestChunkEvenly:
    def test_contiguous_and_complete(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_earlier_chunks_take_the_extras(self):
        sizes = [len(chunk) for chunk in chunk_evenly(list(range(7)), 3)]
        assert sizes == [3, 2, 2]

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_empty_input(self):
        assert chunk_evenly([], 4) == []


class TestBudgetSplitting:
    def test_worker_caps_without_a_budget(self):
        assert worker_caps(None) is None

    def test_remaining_caps_reflect_spend(self):
        budget = Budget(max_solver_calls=10, max_pivots=100)
        budget.charge_solver_call()
        caps = budget.remaining_caps()
        assert caps["max_solver_calls"] == 9
        assert caps["max_pivots"] == 100
        assert "max_expansion_nodes" not in caps
        assert "timeout" not in caps

    def test_remaining_caps_include_the_deadline(self):
        caps = Budget(timeout=60.0).remaining_caps()
        assert 0 < caps["timeout"] <= 60.0

    def test_merge_charges_aggregates(self):
        budget = Budget(max_solver_calls=10)
        budget.merge_charges(expansion_nodes=3, solver_calls=4, pivots=7)
        budget.merge_charges(solver_calls=2)
        snapshot = budget.snapshot("test")
        assert snapshot.expansion_nodes == 3
        assert snapshot.solver_calls == 6
        assert snapshot.pivots == 7

    def test_merge_crossing_a_cap_raises(self):
        budget = Budget(max_solver_calls=5)
        budget.merge_charges(solver_calls=3)
        with pytest.raises(BudgetExceededError):
            budget.merge_charges(solver_calls=3)


class TestPipelineRunMerge:
    def test_merge_folds_worker_stage_timings(self):
        parent = PipelineRun()
        parent.merge(
            {
                "solve": {"runs": 2, "seconds": 0.5},
                "verdict": {"runs": 1, "seconds": 0.1},
            }
        )
        parent.merge({"solve": {"runs": 1, "seconds": 0.25}})
        exported = parent.as_dict()
        assert exported["solve"]["runs"] == 3
        assert exported["solve"]["seconds"] == pytest.approx(0.75)
        assert exported["verdict"]["runs"] == 1


class TestPartitionQueries:
    def test_indices_and_membership_preserved(self):
        schema = meeting_schema()
        queries = [
            ("sat", "Speaker"),
            ("implies", IsaStatement("Discussant", "Speaker")),
            ("implies", MaxCardinalityStatement("Talk", "Holds", "U2", 1)),
            ("sat", "Talk"),
        ]
        partitions = partition_queries(schema, queries, jobs=2)
        seen = sorted(
            index for partition in partitions for index, _, _ in partition
        )
        assert seen == [0, 1, 2, 3]
        for partition in partitions:
            for index, kind, query in partition:
                assert (kind, query) == queries[index]

    def test_base_schema_queries_share_a_partition(self):
        # sat + ISA + disjointness all read the base fingerprint's
        # artifacts, so they must land together for warm reuse.
        schema = meeting_schema()
        queries = [
            ("sat", "Speaker"),
            ("implies", IsaStatement("Discussant", "Speaker")),
            ("sat", "Talk"),
        ]
        partitions = partition_queries(schema, queries, jobs=2)
        assert len(partitions) == 1
        assert len(partitions[0]) == 3

    def test_cardinality_queries_split_by_extended_fingerprint(self):
        schema = meeting_schema()
        queries = [
            ("implies", MinCardinalityStatement("Speaker", "Holds", "U1", 1)),
            ("implies", MaxCardinalityStatement("Talk", "Holds", "U2", 1)),
        ]
        partitions = partition_queries(schema, queries, jobs=2)
        assert len(partitions) == 2

    def test_partitioning_is_deterministic(self):
        schema = meeting_schema()
        queries = [
            ("sat", cls) for cls in schema.classes
        ] + [
            ("implies", MaxCardinalityStatement("Talk", "Holds", "U2", 1)),
        ]
        first = partition_queries(schema, queries, jobs=3)
        second = partition_queries(schema, queries, jobs=3)
        assert first == second


@pytest.fixture(scope="module")
def meeting():
    return meeting_schema()


class TestParallelParity:
    """End-to-end parity against the serial oracle (spawns real pools)."""

    def test_satisfiable_classes_matches_serial(self, meeting):
        assert satisfiable_classes(meeting, jobs=2) == satisfiable_classes(
            meeting
        )

    def test_naive_engine_witness_is_bit_identical(self, meeting):
        serial = is_class_satisfiable(meeting, "Speaker", engine="naive")
        fanned = is_class_satisfiable(
            meeting, "Speaker", engine="naive", jobs=2
        )
        assert fanned.satisfiable == serial.satisfiable
        assert fanned.solution == serial.solution
        assert fanned.support == serial.support

    def test_budget_degrades_the_parallel_sweep(self, meeting):
        verdicts = satisfiable_classes(
            meeting, budget=Budget(timeout=0), jobs=2
        )
        assert verdicts
        assert all(v is Verdict.UNKNOWN for v in verdicts.values())

    def test_parallel_batch_degrades_to_unknown_on_exhaustion(self, meeting):
        queries = [
            ("sat", "Speaker"),
            ("implies", IsaStatement("Talk", "Speaker")),
        ]
        outcome = run_parallel_batch(
            meeting, queries, jobs=2, budget=Budget(timeout=0)
        )
        assert len(outcome.records) == len(queries)
        assert outcome.any_unknown
        assert not outcome.all_positive
        assert all(
            record["verdict"] == "unknown" for record in outcome.records
        )

    def test_the_pool_refuses_serial_job_counts(self, meeting):
        # jobs=1 must bypass the pool at the call site; reaching the
        # pool with it is a programming error, not a degenerate pool.
        with pytest.raises(ReproError, match="bypass"):
            run_parallel_batch(meeting, [("sat", "Speaker")], jobs=1)


class TestCliJobs:
    @pytest.fixture
    def meeting_file(self, tmp_path):
        path = tmp_path / "meeting.cr"
        path.write_text(serialize_schema(meeting_schema()))
        return str(path)

    @pytest.fixture
    def queries_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "sat Speaker\n"
            "Discussant isa Speaker\n"
            "Talk isa Speaker\n"
            "maxc(Talk, Holds, U2) = 1\n"
        )
        return str(path)

    def test_batch_jobs_output_is_identical_to_serial(
        self, meeting_file, queries_file, capsys
    ):
        serial_rc = main(["batch", meeting_file, queries_file])
        serial_out = capsys.readouterr().out
        parallel_rc = main(
            ["batch", meeting_file, queries_file, "--jobs", "2"]
        )
        parallel_out = capsys.readouterr().out
        assert parallel_rc == serial_rc
        assert parallel_out == serial_out

    def test_batch_stats_report_worker_stage_timings(
        self, meeting_file, queries_file, capsys
    ):
        main(["batch", meeting_file, queries_file, "--jobs", "2", "--stats"])
        out = capsys.readouterr().out
        assert "(2 job(s))" in out
        assert "# wall-clock:" in out
        # The Solve stage ran inside workers; its timings must still
        # appear in the parent's report (satellite-6 regression guard).
        assert "solve" in out

    def test_batch_jobs_with_exhausted_budget_exits_three(
        self, meeting_file, queries_file, capsys
    ):
        rc = main(
            [
                "batch",
                meeting_file,
                queries_file,
                "--jobs",
                "2",
                "--timeout",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 3
        assert "UNKNOWN" in out

    def test_check_accepts_jobs_flag(self, meeting_file, capsys):
        assert main(["check", meeting_file, "--jobs", "2"]) == 0
        assert "Speaker: satisfiable" in capsys.readouterr().out

    def test_env_var_drives_the_pool(
        self, meeting_file, queries_file, capsys, monkeypatch
    ):
        serial_rc = main(["batch", meeting_file, queries_file])
        serial_out = capsys.readouterr().out
        monkeypatch.setenv("REPRO_JOBS", "2")
        env_rc = main(["batch", meeting_file, queries_file])
        env_out = capsys.readouterr().out
        assert env_rc == serial_rc
        assert env_out == serial_out
