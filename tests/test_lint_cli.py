"""End-to-end tests for ``repro lint`` and the analyzer's surfacing in
``check``/``batch``: exit codes, ``--json`` schema stability, and the
short-circuit counters in ``batch --stats``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.cr.builder import SchemaBuilder
from repro.dsl import serialize_schema
from repro.paper import figure1_schema, meeting_schema


def _write(tmp_path, name, schema):
    path = tmp_path / f"{name}.cr"
    path.write_text(serialize_schema(schema))
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    return _write(tmp_path, "meeting", meeting_schema())


@pytest.fixture
def warning_file(tmp_path):
    # An ISA cycle: legal (the classes are merely forced equal), so a
    # warning, not an error.
    schema = (
        SchemaBuilder("Warn")
        .classes("A", "B")
        .relationship("R", r1="A", r2="B")
        .isa("A", "B")
        .isa("B", "A")
        .build()
    )
    return _write(tmp_path, "warn", schema)


@pytest.fixture
def error_file(tmp_path):
    schema = (
        SchemaBuilder("Broken")
        .classes("A", "B", "C")
        .relationship("R", r1="A", r2="C")
        .isa("B", "A")
        .card("A", "R", "r1", 0, 1)
        .card("B", "R", "r1", 2, None)
        .build()
    )
    return _write(tmp_path, "broken", schema)


class TestExitCodes:
    def test_clean_schema_exits_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_warnings_exit_zero_by_default(self, warning_file, capsys):
        assert main(["lint", warning_file]) == 0
        assert "isa-cycle" in capsys.readouterr().out

    def test_warnings_exit_one_under_strict(self, warning_file, capsys):
        assert main(["lint", warning_file, "--strict"]) == 1
        assert "isa-cycle" in capsys.readouterr().out

    def test_errors_exit_one(self, error_file, capsys):
        assert main(["lint", error_file]) == 1
        out = capsys.readouterr().out
        assert "card-refinement-conflict" in out
        assert "B" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.cr")]) == 2
        assert capsys.readouterr().err

    def test_unparsable_schema_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.cr"
        path.write_text("schema Oops { this is not CR }\n")
        assert main(["lint", str(path)]) == 2
        assert capsys.readouterr().err

    def test_figure1_lints_clean(self, tmp_path, capsys):
        # Finite-only unsatisfiability is out of static reach — lint
        # must not claim otherwise (soundness over completeness).
        path = _write(tmp_path, "figure1", figure1_schema())
        assert main(["lint", path, "--strict"]) == 0
        capsys.readouterr()


class TestJsonReport:
    def test_payload_shape_is_stable(self, error_file, capsys):
        assert main(["lint", error_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"schema", "diagnostics", "summary"}
        assert payload["schema"] == "Broken"
        assert set(payload["summary"]) == {
            "error",
            "warning",
            "info",
            "unsat_classes",
        }
        assert payload["summary"]["unsat_classes"] == ["B"]
        for diagnostic in payload["diagnostics"]:
            assert set(diagnostic) == {
                "code",
                "severity",
                "message",
                "classes",
                "relationships",
                "witness",
            }

    def test_clean_json_has_empty_diagnostics(self, clean_file, capsys):
        assert main(["lint", clean_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
        assert payload["summary"]["error"] == 0

    def test_json_is_deterministic(self, error_file, capsys):
        main(["lint", error_file, "--json"])
        first = capsys.readouterr().out
        main(["lint", error_file, "--json"])
        assert capsys.readouterr().out == first


class TestShortCircuitSurfacing:
    def test_check_prints_the_diagnostic(self, error_file, capsys):
        assert main(["check", error_file, "--class", "B"]) == 1
        out = capsys.readouterr().out
        assert "B: UNSATISFIABLE" in out
        assert "card-refinement-conflict" in out

    def test_batch_stats_count_short_circuits(self, error_file, capsys):
        code = main(
            [
                "batch",
                error_file,
                "--query",
                "sat B",
                "--query",
                "sat B",
                "--stats",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "# analyze: 1 run(s), 2 short-circuit(s)" in out
        # The static proof settled both queries: no expansion was built.
        assert "0 expansion build(s)" in out

    def test_batch_stats_on_clean_schema(self, clean_file, capsys):
        code = main(
            ["batch", clean_file, "--query", "sat Speaker", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# analyze: 1 run(s), 0 short-circuit(s)" in out
        assert "1 expansion build(s)" in out


class TestRepoLint:
    """``repro lint --repo`` — the lintkit self-lint surfaced on the
    CLI, gated against the checked-in baseline."""

    def test_repo_mode_is_clean_against_baseline(self, capsys):
        assert main(["lint", "--repo"]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out
        assert "repo lint:" in out

    def test_empty_baseline_surfaces_findings(self, tmp_path, capsys):
        # With no suppressions, the accepted (baselined) findings
        # become new findings and the gate fails.
        path = tmp_path / "empty.json"
        path.write_text('{"version": 1, "suppressions": []}')
        assert main(["lint", "--repo", "--baseline", str(path)]) == 1
        assert "new finding(s)" in capsys.readouterr().out

    def test_invalid_baseline_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["lint", "--repo", "--baseline", str(path)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_stale_suppression_fails_only_under_strict(
        self, tmp_path, capsys
    ):
        import repro.lintkit as lintkit

        baseline = json.loads(
            lintkit.default_baseline_path().read_text()
        )
        baseline["suppressions"].append(
            {
                "rule": "R1",
                "path": "repro/linalg/nonexistent.py",
                "scope": "gone",
                "justification": "matches nothing on purpose",
            }
        )
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(baseline))
        assert main(["lint", "--repo", "--baseline", str(path)]) == 0
        assert "stale suppression" in capsys.readouterr().out
        assert (
            main(["lint", "--repo", "--baseline", str(path), "--strict"])
            == 1
        )
        capsys.readouterr()

    def test_json_report_shape(self, capsys):
        assert main(["lint", "--repo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "version",
            "files_checked",
            "summary",
            "new_findings",
            "baselined",
            "stale_suppressions",
        }
        assert payload["summary"]["new"] == 0
        for finding in payload["baselined"]:
            assert set(finding) == {
                "rule",
                "path",
                "line",
                "scope",
                "message",
                "witness",
            }

    def test_no_schema_and_no_repo_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "schema file" in capsys.readouterr().err


class TestExitCodeDocParity:
    """Satellite: the exit semantics are stated once and pinned on all
    three surfaces — ``--help`` epilog, README, actual behavior."""

    def test_help_epilog_carries_the_exit_codes(self, capsys):
        from repro.cli import LINT_EXIT_CODES

        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        assert LINT_EXIT_CODES in capsys.readouterr().out

    def test_readme_carries_the_exit_codes_verbatim(self):
        from pathlib import Path

        from repro.cli import LINT_EXIT_CODES

        readme = (
            Path(__file__).resolve().parent.parent / "README.md"
        ).read_text()
        assert LINT_EXIT_CODES in readme

    def test_strict_help_mentions_both_modes(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "schema warnings" in out
        assert "stale baseline" in out

    def test_behavior_matches_the_stated_codes(
        self, clean_file, warning_file, tmp_path, capsys
    ):
        # 0 = clean; 1 = findings (warnings under --strict);
        # 2 = unreadable or invalid input.
        assert main(["lint", clean_file]) == 0
        assert main(["lint", warning_file, "--strict"]) == 1
        assert main(["lint", str(tmp_path / "absent.cr")]) == 2
        capsys.readouterr()
