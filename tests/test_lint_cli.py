"""End-to-end tests for ``repro lint`` and the analyzer's surfacing in
``check``/``batch``: exit codes, ``--json`` schema stability, and the
short-circuit counters in ``batch --stats``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.cr.builder import SchemaBuilder
from repro.dsl import serialize_schema
from repro.paper import figure1_schema, meeting_schema


def _write(tmp_path, name, schema):
    path = tmp_path / f"{name}.cr"
    path.write_text(serialize_schema(schema))
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    return _write(tmp_path, "meeting", meeting_schema())


@pytest.fixture
def warning_file(tmp_path):
    # An ISA cycle: legal (the classes are merely forced equal), so a
    # warning, not an error.
    schema = (
        SchemaBuilder("Warn")
        .classes("A", "B")
        .relationship("R", r1="A", r2="B")
        .isa("A", "B")
        .isa("B", "A")
        .build()
    )
    return _write(tmp_path, "warn", schema)


@pytest.fixture
def error_file(tmp_path):
    schema = (
        SchemaBuilder("Broken")
        .classes("A", "B", "C")
        .relationship("R", r1="A", r2="C")
        .isa("B", "A")
        .card("A", "R", "r1", 0, 1)
        .card("B", "R", "r1", 2, None)
        .build()
    )
    return _write(tmp_path, "broken", schema)


class TestExitCodes:
    def test_clean_schema_exits_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_warnings_exit_zero_by_default(self, warning_file, capsys):
        assert main(["lint", warning_file]) == 0
        assert "isa-cycle" in capsys.readouterr().out

    def test_warnings_exit_one_under_strict(self, warning_file, capsys):
        assert main(["lint", warning_file, "--strict"]) == 1
        assert "isa-cycle" in capsys.readouterr().out

    def test_errors_exit_one(self, error_file, capsys):
        assert main(["lint", error_file]) == 1
        out = capsys.readouterr().out
        assert "card-refinement-conflict" in out
        assert "B" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.cr")]) == 2
        assert capsys.readouterr().err

    def test_unparsable_schema_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.cr"
        path.write_text("schema Oops { this is not CR }\n")
        assert main(["lint", str(path)]) == 2
        assert capsys.readouterr().err

    def test_figure1_lints_clean(self, tmp_path, capsys):
        # Finite-only unsatisfiability is out of static reach — lint
        # must not claim otherwise (soundness over completeness).
        path = _write(tmp_path, "figure1", figure1_schema())
        assert main(["lint", path, "--strict"]) == 0
        capsys.readouterr()


class TestJsonReport:
    def test_payload_shape_is_stable(self, error_file, capsys):
        assert main(["lint", error_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"schema", "diagnostics", "summary"}
        assert payload["schema"] == "Broken"
        assert set(payload["summary"]) == {
            "error",
            "warning",
            "info",
            "unsat_classes",
        }
        assert payload["summary"]["unsat_classes"] == ["B"]
        for diagnostic in payload["diagnostics"]:
            assert set(diagnostic) == {
                "code",
                "severity",
                "message",
                "classes",
                "relationships",
                "witness",
            }

    def test_clean_json_has_empty_diagnostics(self, clean_file, capsys):
        assert main(["lint", clean_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
        assert payload["summary"]["error"] == 0

    def test_json_is_deterministic(self, error_file, capsys):
        main(["lint", error_file, "--json"])
        first = capsys.readouterr().out
        main(["lint", error_file, "--json"])
        assert capsys.readouterr().out == first


class TestShortCircuitSurfacing:
    def test_check_prints_the_diagnostic(self, error_file, capsys):
        assert main(["check", error_file, "--class", "B"]) == 1
        out = capsys.readouterr().out
        assert "B: UNSATISFIABLE" in out
        assert "card-refinement-conflict" in out

    def test_batch_stats_count_short_circuits(self, error_file, capsys):
        code = main(
            [
                "batch",
                error_file,
                "--query",
                "sat B",
                "--query",
                "sat B",
                "--stats",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "# analyze: 1 run(s), 2 short-circuit(s)" in out
        # The static proof settled both queries: no expansion was built.
        assert "0 expansion build(s)" in out

    def test_batch_stats_on_clean_schema(self, clean_file, capsys):
        code = main(
            ["batch", clean_file, "--query", "sat Speaker", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# analyze: 1 run(s), 0 short-circuit(s)" in out
        assert "1 expansion build(s)" in out
