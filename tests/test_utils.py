"""Unit tests for :mod:`repro.utils`."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.utils import (
    FreshNames,
    common_denominator_scale,
    fraction_lcm,
    integer_lcm,
    is_identifier,
    parse_fraction,
    stable_sorted_set,
    topological_levels,
)


class TestIsIdentifier:
    def test_accepts_simple_names(self):
        assert is_identifier("Speaker")
        assert is_identifier("_private")
        assert is_identifier("U1")

    def test_rejects_leading_digit(self):
        assert not is_identifier("1U")

    def test_rejects_punctuation(self):
        assert not is_identifier("a-b")
        assert not is_identifier("a b")
        assert not is_identifier("")

    def test_rejects_embedded_newline(self):
        assert not is_identifier("a\nb")


class TestFreshNames:
    def test_returns_stem_when_free(self):
        assert FreshNames().fresh("C_exc") == "C_exc"

    def test_counters_on_collisions(self):
        fresh = FreshNames(["C_exc"])
        assert fresh.fresh("C_exc") == "C_exc_1"
        assert fresh.fresh("C_exc") == "C_exc_2"

    def test_reserve_blocks_a_name(self):
        fresh = FreshNames()
        fresh.reserve("X")
        assert fresh.fresh("X") == "X_1"

    def test_generated_names_are_remembered(self):
        fresh = FreshNames()
        first = fresh.fresh("A")
        second = fresh.fresh("A")
        assert first != second

    @given(st.lists(st.sampled_from(["a", "a_1", "b"]), max_size=6))
    def test_never_returns_a_taken_name(self, taken):
        fresh = FreshNames(taken)
        produced = [fresh.fresh("a") for _ in range(4)]
        assert len(set(produced)) == 4
        assert not (set(produced) & set(taken))


class TestStableSortedSet:
    def test_deduplicates_and_sorts(self):
        assert stable_sorted_set(["b", "a", "b"]) == ("a", "b")

    def test_empty(self):
        assert stable_sorted_set([]) == ()


class TestTopologicalLevels:
    def test_chain(self):
        levels = topological_levels({"a": ["b"], "b": ["c"]})
        assert levels == [["a"], ["b"], ["c"]]

    def test_diamond(self):
        levels = topological_levels({"a": ["b", "c"], "b": ["d"], "c": ["d"]})
        assert levels == [["a"], ["b", "c"], ["d"]]

    def test_self_loops_are_ignored(self):
        levels = topological_levels({"a": ["a", "b"]})
        assert levels == [["a"], ["b"]]

    def test_cycle_raises(self):
        with pytest.raises(ReproError):
            topological_levels({"a": ["b"], "b": ["a"]})


class TestIntegerLcm:
    def test_basic(self):
        assert integer_lcm([4, 6]) == 12

    def test_empty_is_one(self):
        assert integer_lcm([]) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            integer_lcm([0])

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=5))
    def test_divides_all(self, values):
        lcm = integer_lcm(values)
        assert all(lcm % value == 0 for value in values)


class TestFractionLcm:
    def test_integers(self):
        assert fraction_lcm([Fraction(2), Fraction(3)]) == 6

    def test_fractions(self):
        # lcm(1/2, 1/3) = 1: 1 is a multiple of both (2*(1/2), 3*(1/3)).
        assert fraction_lcm([Fraction(1, 2), Fraction(1, 3)]) == 1

    def test_empty_is_one(self):
        assert fraction_lcm([]) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fraction_lcm([Fraction(0)])

    @given(
        st.lists(
            st.fractions(min_value="1/10", max_value=10), min_size=1, max_size=4
        )
    )
    def test_result_is_common_multiple(self, values):
        lcm = fraction_lcm(values)
        for value in values:
            assert (lcm / value).denominator == 1


class TestCommonDenominatorScale:
    def test_integers_need_no_scaling(self):
        assert common_denominator_scale([Fraction(3), Fraction(5)]) == 1

    def test_mixed(self):
        assert common_denominator_scale([Fraction(1, 2), Fraction(1, 3)]) == 6

    @given(st.lists(st.fractions(min_value=0, max_value=5), max_size=5))
    def test_scaling_makes_everything_integral(self, values):
        scale = common_denominator_scale(values)
        assert scale >= 1
        assert all((value * scale).denominator == 1 for value in values)


class TestParseFraction:
    def test_integer(self):
        assert parse_fraction("3") == 3

    def test_ratio(self):
        assert parse_fraction(" 3/4 ") == Fraction(3, 4)

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            parse_fraction("three")
