"""The component-decomposition layer, outside-in.

Three layers of pinning:

* **properties** — on random multi-island schemas (namespaced unions
  from :func:`tests.strategies.multi_component_schemas`), the
  decomposition finds exactly the constraint-graph components an
  independent union-find oracle finds, and
  :class:`~repro.components.DecomposedSession` answers every batch
  record byte-identically to the monolithic
  :class:`~repro.session.ReasoningSession` — same verdicts, same
  ``unknown_reason`` strings, same error behaviour, same query counts;
* **counters** — component classification (``components_reused`` vs
  ``components_rebuilt``) against memory and store tiers, through the
  :meth:`~repro.session.cache.CacheStats.bump` funnel;
* **surfaces** — ``repro diff`` end to end (a one-statement edit
  rebuilds only the touched island), the serve engine's ``diff``
  endpoint, and the decompose/combine pipeline stages.
"""

from __future__ import annotations

import contextlib
import io
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.components import (
    DecomposedSession,
    compute_delta,
    decompose_schema,
)
from repro.cr.constraints import (
    IsaStatement,
    MinCardinalityStatement,
)
from repro.cr.schema import Card, CRSchema, Relationship
from repro.dsl import serialize_schema
from repro.errors import SchemaError, UnknownSymbolError
from repro.parallel.worker import answer_query
from repro.pipeline import PipelineRun, activate_run
from repro.session import ReasoningSession, SessionCache
from repro.session.cache import CacheStats
from repro.store import ArtifactStore

from tests.strategies import (
    multi_component_schemas,
    property_max_examples,
    query_mixes,
)

PARITY = settings(
    max_examples=max(5, property_max_examples() // 10),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _two_island_schema(max_card: int = 3, name: str = "Fixture") -> CRSchema:
    """Two independent islands: {A, B} via R and {C, D} via S.

    ``max_card`` parameterises one cardinality in the *second* island,
    so two calls with different values model a one-statement edit that
    leaves the first island untouched.
    """
    return CRSchema(
        classes=("A", "B", "C", "D"),
        relationships=(
            Relationship("R", (("x", "A"), ("y", "B"))),
            Relationship("S", (("w", "C"), ("z", "D"))),
        ),
        cards={
            ("A", "R", "x"): Card(1, 2),
            ("C", "S", "w"): Card(1, max_card),
        },
        name=name,
    )


# ---------------------------------------------------------------------------
# Properties: decomposition structure and session parity
# ---------------------------------------------------------------------------


@PARITY
@given(data=st.data())
def test_components_match_the_union_find_oracle(data):
    """Components partition the classes into exactly the groups an
    independent union-find over the constraint edges produces."""
    schema, expected_count = data.draw(multi_component_schemas())
    decomposition = decompose_schema(schema)
    assert len(decomposition.components) == expected_count
    seen: set[str] = set()
    for component in decomposition.components:
        assert component.classes, "a component cannot be empty"
        assert not (component.classes & seen), "components must be disjoint"
        seen |= component.classes
    assert seen == set(schema.classes)


@PARITY
@given(data=st.data())
def test_decomposed_session_matches_monolithic_records(data):
    """Every batch record — verdicts, reasons, texts, the query counter
    — is identical whether the schema is reasoned whole or by island."""
    schema, _count = data.draw(multi_component_schemas())
    queries = data.draw(query_mixes(schema))
    monolithic = ReasoningSession(schema)
    decomposed = DecomposedSession(schema)
    for kind, query in queries:
        expected = answer_query(monolithic, kind, query)
        actual = answer_query(decomposed, kind, query)
        assert actual == expected
    assert decomposed.queries == monolithic.queries
    assert decomposed.satisfiable_classes() == monolithic.satisfiable_classes()
    assert decomposed.queries == monolithic.queries


@PARITY
@given(data=st.data())
def test_decomposed_session_matches_monolithic_errors(data):
    """Validation failures — unknown names, illegal cardinality triples
    — raise the same exception type with the same message."""
    schema, _count = data.draw(multi_component_schemas())
    monolithic = ReasoningSession(schema)
    decomposed = DecomposedSession(schema)
    probes = [
        lambda s: s.is_class_satisfiable("NoSuchClass"),
        lambda s: s.implies(IsaStatement("NoSuchClass", schema.classes[0])),
        lambda s: s.implies(
            MinCardinalityStatement(
                schema.classes[0], "NoSuchRelationship", "u", 1
            )
        ),
    ]
    for probe in probes:
        with pytest.raises((SchemaError, UnknownSymbolError)) as expected:
            probe(monolithic)
        with pytest.raises((SchemaError, UnknownSymbolError)) as actual:
            probe(decomposed)
        assert type(actual.value) is type(expected.value)
        assert str(actual.value) == str(expected.value)
    assert decomposed.queries == monolithic.queries


# ---------------------------------------------------------------------------
# Fingerprints and deltas
# ---------------------------------------------------------------------------


class TestDeltas:
    def test_unchanged_island_keeps_its_fingerprint(self):
        old = decompose_schema(_two_island_schema(max_card=3))
        new = decompose_schema(_two_island_schema(max_card=4))
        assert old.whole_fingerprint != new.whole_fingerprint
        old_ab = old.component_of("A")
        new_ab = new.component_of("A")
        assert old_ab.fingerprint == new_ab.fingerprint
        assert (
            old.component_of("C").fingerprint
            != new.component_of("C").fingerprint
        )

    def test_identical_schemas_diff_to_all_unchanged(self):
        old = decompose_schema(_two_island_schema())
        new = decompose_schema(_two_island_schema())
        delta = compute_delta(old, new)
        assert len(delta.unchanged) == 2
        assert not delta.changed
        assert not delta.removed

    def test_one_island_edit_changes_exactly_one_component(self):
        old = decompose_schema(_two_island_schema(max_card=3))
        new = decompose_schema(_two_island_schema(max_card=4))
        delta = compute_delta(old, new)
        assert [c.classes for c in delta.unchanged] == [frozenset("AB")]
        assert [c.classes for c in delta.changed] == [frozenset("CD")]
        assert [c.classes for c in delta.removed] == [frozenset("CD")]
        as_dict = delta.as_dict()
        assert as_dict["old_total"] == 2
        assert as_dict["new_total"] == 2
        assert as_dict["changed"][0]["classes"] == ["C", "D"]


# ---------------------------------------------------------------------------
# Reuse counters, through the bump() funnel
# ---------------------------------------------------------------------------


class RecordingStats(CacheStats):
    """Counts every increment that flows through :meth:`bump`."""

    def __init__(self) -> None:
        super().__init__()
        self.bumped: dict[str, int] = {}

    def bump(self, counter: str, amount: int = 1) -> None:
        self.bumped[counter] = self.bumped.get(counter, 0) + amount
        super().bump(counter, amount)


class TestReuseCounters:
    def test_cold_run_rebuilds_every_component(self, tmp_path):
        cache = SessionCache(store=ArtifactStore(str(tmp_path)))
        session = DecomposedSession(_two_island_schema(), cache=cache)
        session.satisfiable_classes()
        assert session.components_total == 2
        assert session.components_reused == 0
        assert session.components_rebuilt == 2
        stats = session.stats.as_dict()
        assert stats["components_total"] == 2
        assert stats["components_rebuilt"] == 2

    def test_store_warm_run_reuses_every_component(self, tmp_path):
        store_dir = str(tmp_path)
        first = DecomposedSession(
            _two_island_schema(),
            cache=SessionCache(store=ArtifactStore(store_dir)),
        )
        first.satisfiable_classes()
        # A fresh process: new memory tier, same persistent store.
        second = DecomposedSession(
            _two_island_schema(),
            cache=SessionCache(store=ArtifactStore(store_dir)),
        )
        second.classify_all()
        assert second.components_total == 2
        assert second.components_reused == 2
        assert second.components_rebuilt == 0

    def test_edit_rebuilds_only_the_touched_island(self, tmp_path):
        store_dir = str(tmp_path)
        old = DecomposedSession(
            _two_island_schema(max_card=3),
            cache=SessionCache(store=ArtifactStore(store_dir)),
        )
        old.satisfiable_classes()
        new = DecomposedSession(
            _two_island_schema(max_card=4),
            cache=SessionCache(store=ArtifactStore(store_dir)),
        )
        new.classify_all()
        assert new.components_reused == 1
        assert new.components_rebuilt == 1

    def test_cardinality_queries_classify_nothing(self):
        """Cardinality implications reason over the Section-4 extended
        schema — their artifacts live under its fingerprint, so no base
        component gets (mis)counted."""
        session = DecomposedSession(_two_island_schema())
        session.implies(MinCardinalityStatement("A", "R", "x", 2))
        assert session.components_total == 0

    def test_counters_flow_through_the_bump_funnel(self):
        stats = RecordingStats()
        session = DecomposedSession(
            _two_island_schema(), cache=SessionCache(stats=stats)
        )
        session.classify_all()
        assert stats.bumped.get("components_total") == 2
        assert stats.bumped.get("components_rebuilt") == 2
        assert "components_reused" not in stats.bumped
        for counter, value in stats.bumped.items():
            assert getattr(stats, counter) == value


# ---------------------------------------------------------------------------
# CLI: repro diff end to end, serial == --jobs 2
# ---------------------------------------------------------------------------


def _run_cli(argv: list[str]) -> tuple[str, int]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = cli_main(argv)
    return out.getvalue(), code


class TestCliDiff:
    QUERIES = ["sat A", "sat C", "A isa B", "disjoint(C, D)"]

    def _write_inputs(self, tmp: Path) -> tuple[Path, Path, Path]:
        old_path = tmp / "old.cr"
        old_path.write_text(serialize_schema(_two_island_schema(max_card=3)))
        new_path = tmp / "new.cr"
        new_path.write_text(serialize_schema(_two_island_schema(max_card=4)))
        queries_path = tmp / "queries.txt"
        queries_path.write_text("\n".join(self.QUERIES) + "\n")
        return old_path, new_path, queries_path

    def test_one_statement_edit_rebuilds_one_component(self):
        with tempfile.TemporaryDirectory() as tmp:
            old_path, new_path, queries_path = self._write_inputs(Path(tmp))
            store = str(Path(tmp) / "store")
            _text, warm_code = _run_cli(
                ["batch", str(old_path), str(queries_path), "--cache-dir", store]
            )
            diff_text, diff_code = _run_cli(
                [
                    "diff",
                    str(old_path),
                    str(new_path),
                    str(queries_path),
                    "--json",
                    "--cache-dir",
                    store,
                ]
            )
            report = json.loads(diff_text)
            assert report["components"]["old_total"] == 2
            assert len(report["components"]["unchanged"]) == 1
            assert len(report["components"]["changed"]) == 1
            assert report["stats"]["components_reused"] == 1
            assert report["stats"]["components_rebuilt"] == 1
            assert "decompose" in report["stages"]

            cold_text, cold_code = _run_cli(
                [
                    "batch",
                    str(new_path),
                    str(queries_path),
                    "--json",
                    "--no-cache",
                ]
            )
            cold = json.loads(cold_text)
            assert report["results"] == cold["results"]
            assert diff_code == cold_code == warm_code

    def test_report_only_diff_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            old_path, new_path, _queries = self._write_inputs(Path(tmp))
            text, code = _run_cli(
                ["diff", str(old_path), str(new_path), "--no-cache"]
            )
            assert code == 0
            assert "1 unchanged, 1 changed, 1 removed" in text

    def test_serial_and_jobs_two_reports_are_identical(self):
        with tempfile.TemporaryDirectory() as tmp:
            old_path, _new, queries_path = self._write_inputs(Path(tmp))
            serial_text, serial_code = _run_cli(
                ["batch", str(old_path), str(queries_path), "--json", "--no-cache"]
            )
            jobs_text, jobs_code = _run_cli(
                [
                    "batch",
                    str(old_path),
                    str(queries_path),
                    "--json",
                    "--no-cache",
                    "--jobs",
                    "2",
                ]
            )
            serial = json.loads(serial_text)
            jobs = json.loads(jobs_text)
            for volatile in ("wall_seconds", "jobs", "stages"):
                serial.pop(volatile, None)
                jobs.pop(volatile, None)
            assert jobs == serial


# ---------------------------------------------------------------------------
# Serve: the diff endpoint
# ---------------------------------------------------------------------------


class TestServeDiff:
    def test_diff_endpoint_reports_reuse_and_answers(self, tmp_path):
        from repro.serve.engine import ServeEngine

        old_text = serialize_schema(_two_island_schema(max_card=3))
        new_text = serialize_schema(_two_island_schema(max_card=4))
        engine = ServeEngine(cache_dir=str(tmp_path))
        warm = engine.handle(
            "batch", {"schema": old_text, "queries": ["sat A", "sat C"]}
        )
        assert warm["payload"]["exit_code"] == 0
        response = engine.handle(
            "diff",
            {
                "old_schema": old_text,
                "new_schema": new_text,
                "queries": ["sat A", "sat C"],
            },
        )
        payload = response["payload"]
        assert payload["old_fingerprint"] != payload["new_fingerprint"]
        assert payload["components"]["new_total"] == 2
        assert len(payload["components"]["unchanged"]) == 1
        assert payload["stats"]["components_reused"] == 1
        assert payload["stats"]["components_rebuilt"] == 1
        assert payload["exit_code"] == 0
        assert [r["verdict"] for r in payload["results"]] == ["sat", "sat"]
        metrics = engine.cache_metrics()
        assert metrics["components_total"] >= 4
        assert metrics["components_reused"] >= 1

    def test_report_only_diff_needs_no_queries(self, tmp_path):
        from repro.serve.engine import ServeEngine

        engine = ServeEngine(cache_dir=str(tmp_path))
        response = engine.handle(
            "diff",
            {
                "old_schema": serialize_schema(_two_island_schema(max_card=3)),
                "new_schema": serialize_schema(_two_island_schema(max_card=4)),
            },
        )
        assert response["payload"]["results"] == []
        assert response["payload"]["exit_code"] == 0


# ---------------------------------------------------------------------------
# Pipeline stages
# ---------------------------------------------------------------------------


class TestStages:
    def test_construction_times_the_decompose_stage(self):
        run = PipelineRun()
        with activate_run(run):
            DecomposedSession(_two_island_schema())
        assert run.as_dict()["decompose"]["runs"] == 1

    def test_cross_component_query_enters_the_combine_stage(self):
        run = PipelineRun()
        with activate_run(run):
            session = DecomposedSession(_two_island_schema())
            session.implies(IsaStatement("A", "C"))
        assert run.as_dict()["combine"]["runs"] == 1

    def test_same_component_queries_never_combine(self):
        run = PipelineRun()
        with activate_run(run):
            session = DecomposedSession(_two_island_schema())
            session.implies(IsaStatement("A", "B"))
            session.is_class_satisfiable("C")
        assert "combine" not in run.as_dict()
