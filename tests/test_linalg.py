"""Unit tests for :mod:`repro.linalg` (exact rational linear algebra)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import Matrix, Vector

fractions = st.fractions(min_value=-5, max_value=5)


def small_matrices(rows=st.integers(1, 4), cols=st.integers(1, 4)):
    return rows.flatmap(
        lambda r: cols.flatmap(
            lambda c: st.lists(
                st.lists(fractions, min_size=c, max_size=c),
                min_size=r,
                max_size=r,
            ).map(Matrix)
        )
    )


class TestVector:
    def test_construction_coerces_ints(self):
        vector = Vector([1, 2])
        assert vector[0] == Fraction(1)

    def test_zeros_and_unit(self):
        assert Vector.zeros(3).is_zero()
        unit = Vector.unit(3, 1)
        assert list(unit) == [0, 1, 0]

    def test_addition_and_subtraction(self):
        a, b = Vector([1, 2]), Vector([3, 4])
        assert a + b == Vector([4, 6])
        assert b - a == Vector([2, 2])

    def test_scalar_multiplication_both_sides(self):
        assert 2 * Vector([1, 2]) == Vector([2, 4])
        assert Vector([1, 2]) * Fraction(1, 2) == Vector([Fraction(1, 2), 1])

    def test_dot(self):
        assert Vector([1, 2]).dot(Vector([3, 4])) == 11

    def test_negation(self):
        assert -Vector([1, -2]) == Vector([-1, 2])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Vector([1]).dot(Vector([1, 2]))
        with pytest.raises(ValueError):
            Vector([1]) + Vector([1, 2])

    def test_hashable(self):
        assert len({Vector([1, 2]), Vector([1, 2])}) == 1

    @given(st.lists(fractions, min_size=1, max_size=5))
    def test_dot_with_self_is_nonnegative(self, entries):
        vector = Vector(entries)
        assert vector.dot(vector) >= 0


class TestMatrixBasics:
    def test_shape_and_access(self):
        matrix = Matrix([[1, 2, 3], [4, 5, 6]])
        assert matrix.shape == (2, 3)
        assert matrix[1, 2] == 6
        assert matrix.row(0) == Vector([1, 2, 3])
        assert matrix.column(1) == Vector([2, 5])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [3]])

    def test_identity(self):
        eye = Matrix.identity(2)
        assert eye == Matrix([[1, 0], [0, 1]])

    def test_transpose(self):
        matrix = Matrix([[1, 2, 3], [4, 5, 6]])
        assert matrix.transpose() == Matrix([[1, 4], [2, 5], [3, 6]])

    def test_addition_and_scaling(self):
        a = Matrix([[1, 2], [3, 4]])
        assert a + a == 2 * a
        assert a - a == Matrix.zeros(2, 2)

    def test_matmul(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[0, 1], [1, 0]])
        assert a.matmul(b) == Matrix([[2, 1], [4, 3]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2]]).matmul(Matrix([[1, 2]]))

    def test_apply(self):
        assert Matrix([[1, 2], [3, 4]]).apply(Vector([1, 1])) == Vector([3, 7])


class TestRref:
    def test_already_reduced(self):
        matrix = Matrix.identity(3)
        reduced, pivots = matrix.rref()
        assert reduced == matrix
        assert pivots == [0, 1, 2]

    def test_rank_deficient(self):
        matrix = Matrix([[1, 2], [2, 4]])
        assert matrix.rank() == 1

    def test_known_reduction(self):
        matrix = Matrix([[1, 2, 3], [4, 5, 6]])
        reduced, pivots = matrix.rref()
        assert pivots == [0, 1]
        assert reduced == Matrix([[1, 0, -1], [0, 1, 2]])

    @given(small_matrices())
    def test_rank_bounded_by_shape(self, matrix):
        rank = matrix.rank()
        assert 0 <= rank <= min(matrix.shape)

    @given(small_matrices())
    def test_rref_is_idempotent(self, matrix):
        reduced, _ = matrix.rref()
        again, _ = reduced.rref()
        assert again == reduced


class TestNullspace:
    def test_full_rank_has_trivial_nullspace(self):
        assert Matrix.identity(3).nullspace() == []

    def test_nullspace_vectors_are_in_kernel(self):
        matrix = Matrix([[1, 2, 3], [4, 5, 6]])
        basis = matrix.nullspace()
        assert len(basis) == 1
        assert matrix.apply(basis[0]).is_zero()

    @given(small_matrices())
    def test_nullspace_dimension_matches_rank_nullity(self, matrix):
        basis = matrix.nullspace()
        assert len(basis) == matrix.shape[1] - matrix.rank()
        for vector in basis:
            assert matrix.apply(vector).is_zero()


class TestSolve:
    def test_unique_solution(self):
        matrix = Matrix([[2, 0], [0, 4]])
        solution = matrix.solve(Vector([4, 8]))
        assert solution == Vector([2, 2])

    def test_inconsistent_returns_none(self):
        matrix = Matrix([[1, 1], [1, 1]])
        assert matrix.solve(Vector([1, 2])) is None

    def test_underdetermined_solution_satisfies_system(self):
        matrix = Matrix([[1, 1, 1]])
        solution = matrix.solve(Vector([3]))
        assert solution is not None
        assert matrix.apply(solution) == Vector([3])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2]]).solve(Vector([1, 2]))

    @given(small_matrices())
    def test_solve_agrees_with_apply(self, matrix):
        rhs = matrix.apply(Vector([Fraction(1)] * matrix.shape[1]))
        solution = matrix.solve(rhs)
        assert solution is not None
        assert matrix.apply(solution) == rhs
