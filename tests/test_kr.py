"""Unit tests for the frame/KR adapter."""

from __future__ import annotations

import pytest

from repro.cr.implication import implies_isa, implies_max_cardinality
from repro.cr.satisfiability import satisfiable_classes
from repro.cr.schema import Card, UNBOUNDED
from repro.errors import DuplicateSymbolError, UnknownSymbolError
from repro.kr import KnowledgeBase, kr_to_cr


def family_kb() -> KnowledgeBase:
    kb = KnowledgeBase("Family")
    kb.frame("Person")
    kb.frame("Parent", subsumers=["Person"])
    kb.slot("child", domain="Person", range="Person")
    kb.restrict("Parent", "child", at_least=1)
    return kb


class TestDeclarations:
    def test_duplicate_frame_rejected(self):
        kb = KnowledgeBase().frame("F")
        with pytest.raises(DuplicateSymbolError):
            kb.frame("F")

    def test_duplicate_slot_rejected(self):
        kb = KnowledgeBase().frame("F")
        kb.slot("s", "F", "F")
        with pytest.raises(DuplicateSymbolError):
            kb.slot("s", "F", "F")

    def test_validation_catches_unknowns(self):
        kb = KnowledgeBase().frame("F", subsumers=["Ghost"])
        with pytest.raises(UnknownSymbolError):
            kb.validate()
        kb2 = KnowledgeBase().frame("F")
        kb2.slot("s", "F", "Ghost")
        with pytest.raises(UnknownSymbolError):
            kb2.validate()
        kb3 = KnowledgeBase().frame("F")
        kb3.slot("s", "F", "F")
        kb3.restrict("Ghost", "s", at_least=1)
        with pytest.raises(UnknownSymbolError):
            kb3.validate()


class TestTranslation:
    def test_slot_becomes_binary_relationship(self):
        schema = kr_to_cr(family_kb())
        rel = schema.relationship("child")
        assert rel.signature == (("of_child", "Person"), ("is_child", "Person"))

    def test_restriction_becomes_refinement(self):
        schema = kr_to_cr(family_kb())
        assert schema.card("Parent", "child", "of_child") == Card(1, UNBOUNDED)
        assert schema.card("Person", "child", "of_child") == Card.default()

    def test_subsumption_becomes_isa(self):
        schema = kr_to_cr(family_kb())
        assert schema.is_subclass("Parent", "Person")

    def test_disjoint_frames_carry_over(self):
        kb = KnowledgeBase().frame("F").frame("G")
        kb.slot("s", "F", "G")
        kb.disjoint("F", "G")
        schema = kr_to_cr(kb)
        assert schema.disjointness_groups == (frozenset({"F", "G"}),)


class TestReasoningServices:
    def test_coherence(self):
        verdicts = satisfiable_classes(kr_to_cr(family_kb()))
        assert verdicts == {"Person": True, "Parent": True}

    def test_incoherent_frame_detected(self):
        # OnlyChildParent must have at least 2 children but at most 1.
        kb = family_kb()
        kb.frame("Strict", subsumers=["Parent"])
        kb.restrict("Strict", "child", at_least=2, at_most=1)
        verdicts = satisfiable_classes(kr_to_cr(kb))
        assert verdicts["Strict"] is False
        assert verdicts["Parent"] is True

    def test_finite_model_subsumption(self):
        # Everybody has exactly one 'mentor' in Guru, each Guru mentors
        # exactly one person, and Guru <= Person: finitely, Person = Guru.
        kb = KnowledgeBase()
        kb.frame("Person")
        kb.frame("Guru", subsumers=["Person"])
        kb.slot("mentor", domain="Person", range="Guru")
        kb.restrict("Person", "mentor", at_least=1, at_most=1)
        kb.slot("pupil", domain="Guru", range="Person")
        kb.restrict("Guru", "pupil", at_least=1, at_most=1)
        schema = kr_to_cr(kb)
        # |mentor| = |Person|, and each Guru is mentor-target at most...
        # left symmetric on purpose: just check the reasoner runs and the
        # declared subsumption is implied.
        assert implies_isa(schema, "Guru", "Person").implied

    def test_implied_number_restriction(self):
        kb = family_kb()
        schema = kr_to_cr(kb)
        # at-most restrictions weaker than a declared one are implied.
        kb2 = KnowledgeBase()
        kb2.frame("F")
        kb2.frame("G")
        kb2.slot("s", "F", "G")
        kb2.restrict("F", "s", at_least=0, at_most=2)
        schema2 = kr_to_cr(kb2)
        assert implies_max_cardinality(schema2, "F", "s", "of_s", 3).implied
        assert not implies_max_cardinality(schema2, "F", "s", "of_s", 1).implied
        assert schema is not schema2
