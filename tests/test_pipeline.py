"""The staged pipeline IR: stage timing, budget-phase interplay, CLI.

The IR has two independent halves — the ambient :class:`PipelineRun`
collector (timing) and the budget-phase bookkeeping inside
:func:`stage` — and the contract that neither does anything when its
ambient object is absent.  The CLI tests check the end of the wire:
``repro batch --stats`` prints a per-stage table and ``--json`` embeds
the same numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dsl import serialize_schema
from repro.paper import meeting_schema
from repro.errors import BudgetExceededError
from repro.pipeline import (
    CANONICAL_STAGES,
    STAGE_EXPAND,
    STAGE_SOLVE,
    STAGE_VERDICT,
    PipelineRun,
    activate_run,
    current_run,
    stage,
)
from repro.runtime.budget import Budget, activate, current_budget


@pytest.fixture
def meeting_file(tmp_path):
    path = tmp_path / "meeting.cr"
    path.write_text(serialize_schema(meeting_schema()))
    return str(path)


class FakeClock:
    """A clock advanced by hand, so stage timings are exact."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestPipelineRun:
    def test_record_accumulates_runs_and_seconds(self):
        run = PipelineRun()
        run.record(STAGE_SOLVE, 0.25)
        run.record(STAGE_SOLVE, 0.5)
        timing = run.stages[STAGE_SOLVE]
        assert timing.runs == 2
        assert timing.seconds == pytest.approx(0.75)
        assert run.total_seconds() == pytest.approx(0.75)

    def test_as_dict_reports_in_pipeline_order(self):
        run = PipelineRun()
        run.record(STAGE_VERDICT, 0.1)
        run.record("custom", 0.2)
        run.record(STAGE_EXPAND, 0.3)
        names = list(run.as_dict())
        # Canonical stages first, in pipeline order; extras trail.
        assert names == [STAGE_EXPAND, STAGE_VERDICT, "custom"]

    def test_canonical_order_matches_the_pipeline(self):
        assert CANONICAL_STAGES == (
            "normalize",
            "decompose",
            "analyze",
            "expand",
            "build-system",
            "solve",
            "verdict",
            "combine",
        )

    def test_pretty_formats_milliseconds(self):
        run = PipelineRun()
        run.record(STAGE_SOLVE, 0.0124)
        assert run.pretty() == "solve: 1 run(s), 12.4ms"

    def test_pretty_on_an_empty_run(self):
        assert PipelineRun().pretty() == "(no stages ran)"


class TestStage:
    def test_stage_charges_wall_clock_to_the_active_run(self):
        clock = FakeClock()
        run = PipelineRun(clock=clock)
        with activate_run(run):
            with stage(STAGE_EXPAND):
                clock.now += 2.0
        assert run.stages[STAGE_EXPAND].runs == 1
        assert run.stages[STAGE_EXPAND].seconds == pytest.approx(2.0)

    def test_stage_records_even_when_the_block_raises(self):
        clock = FakeClock()
        run = PipelineRun(clock=clock)
        with activate_run(run):
            with pytest.raises(RuntimeError):
                with stage(STAGE_SOLVE):
                    clock.now += 1.0
                    raise RuntimeError("solver died")
        assert run.stages[STAGE_SOLVE].seconds == pytest.approx(1.0)

    def test_stage_without_a_run_or_budget_is_a_no_op(self):
        assert current_run() is None
        assert current_budget() is None
        with stage(STAGE_SOLVE):
            pass  # nothing to assert: must simply not fail

    def test_stage_sets_and_restores_the_budget_phase(self):
        budget = Budget()
        with activate(budget):
            budget.enter_phase("outer")
            with stage(STAGE_SOLVE, phase="decide:fixpoint"):
                assert budget.phase == "decide:fixpoint"
            assert budget.phase == "outer"

    def test_stage_phase_entry_checks_the_budget(self):
        # An exhausted budget refuses the stage at the door, like
        # scoped_phase; no timing is charged for work that never ran.
        run = PipelineRun(clock=FakeClock())
        budget = Budget(timeout=0)
        with activate(budget), activate_run(run):
            with pytest.raises(BudgetExceededError):
                with stage(STAGE_SOLVE, phase="decide:fixpoint"):
                    pass
        assert STAGE_SOLVE not in run.stages

    def test_stage_with_phase_none_leaves_the_budget_alone(self):
        budget = Budget()
        with activate(budget):
            budget.enter_phase("outer")
            with stage(STAGE_VERDICT):
                assert budget.phase == "outer"
            assert budget.phase == "outer"


class TestActivateRun:
    def test_activate_none_keeps_the_enclosing_run(self):
        outer = PipelineRun()
        with activate_run(outer):
            with activate_run(None):
                assert current_run() is outer

    def test_nested_runs_shadow_and_restore(self):
        outer, inner = PipelineRun(), PipelineRun()
        with activate_run(outer):
            with activate_run(inner):
                assert current_run() is inner
            assert current_run() is outer
        assert current_run() is None

    def test_decision_procedures_report_through_the_ambient_run(
        self, meeting
    ):
        from repro.cr.satisfiability import satisfiable_classes

        run = PipelineRun()
        with activate_run(run):
            verdicts = satisfiable_classes(meeting)
        assert all(verdicts.values())
        for name in ("expand", "build-system", "solve", "verdict"):
            assert run.stages[name].runs >= 1
        assert run.total_seconds() > 0


class TestBatchStats:
    def test_stats_prints_the_per_stage_table(self, meeting_file, capsys):
        code = main(
            [
                "batch",
                meeting_file,
                "--query",
                "sat Talk",
                "--query",
                "Discussant isa Speaker",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("normalize", "expand", "build-system", "solve", "verdict"):
            assert f"# stage {name}: " in out
        # One schema parse, one expansion, one system build for the batch.
        assert "# stage expand: 1 run(s)" in out
        assert "# stage build-system: 1 run(s)" in out

    def test_json_report_embeds_the_stage_timings(self, meeting_file, capsys):
        code = main(
            ["batch", meeting_file, "--query", "sat Speaker", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        stages = report["stages"]
        assert set(stages) >= {"normalize", "expand", "solve", "verdict"}
        for timing in stages.values():
            assert timing["runs"] >= 1
            assert timing["seconds"] >= 0
