"""Property-based tests of the decision procedure's core guarantees.

These are the library's strongest correctness evidence:

* **engine agreement** — the fixpoint engine and the literal
  Theorem-3.4 zero-set enumeration return the same verdict on random
  schemas;
* **executable soundness** — whenever a class is satisfiable, the
  constructed model passes the Definition-2.2 checker and populates the
  class;
* **executable completeness of implication** — whenever a statement is
  not implied, the counter-model is a model of the schema violating the
  statement;
* **Lemma 3.2** — a random interpretation satisfies conditions (A)–(C)
  iff it satisfies (A')–(C');
* **cone scaling** — integer multiples of a witness stay witnesses;
* **baseline agreement** — on ISA-free schemas the full procedure
  agrees with Lenzerini–Nobili.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cr.baseline import baseline_satisfiable_classes
from repro.cr.checker import check_expansion_model, check_model
from repro.cr.constraints import IsaStatement
from repro.cr.construction import construct_model, construct_model_for_result
from repro.cr.expansion import Expansion
from repro.cr.implication import implies_isa, statement_holds
from repro.cr.satisfiability import is_acceptable, is_class_satisfiable
from repro.cr.system import build_system
from repro.dsl import parse_schema, serialize_schema

from tests.strategies import interpretations_for, schemas

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
MEDIUM = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW
@given(data=st.data())
def test_fixpoint_and_naive_engines_agree(data):
    schema = data.draw(schemas(max_classes=3, max_relationships=1))
    cls = data.draw(st.sampled_from(schema.classes))
    expansion = Expansion(schema)
    fixpoint = is_class_satisfiable(
        schema, cls, engine="fixpoint", expansion=expansion
    )
    naive = is_class_satisfiable(
        schema, cls, engine="naive", expansion=expansion
    )
    assert fixpoint.satisfiable == naive.satisfiable


@MEDIUM
@given(data=st.data())
def test_satisfiable_classes_yield_checked_models(data):
    schema = data.draw(schemas(max_classes=4, allow_extensions=True))
    cls = data.draw(st.sampled_from(schema.classes))
    result = is_class_satisfiable(schema, cls)
    if not result.satisfiable:
        return
    model = construct_model_for_result(result)
    assert check_model(schema, model) == [], (
        f"constructed model violates the schema for class {cls}"
    )
    assert model.instances_of(cls), "witness model does not populate the class"


@MEDIUM
@given(data=st.data())
def test_witness_solutions_solve_the_system_and_are_acceptable(data):
    schema = data.draw(schemas(max_classes=4))
    cls = data.draw(st.sampled_from(schema.classes))
    result = is_class_satisfiable(schema, cls)
    if not result.satisfiable:
        return
    cr_system = result.cr_system
    solution = {
        name: Fraction(result.solution.get(name, 0))
        for name in cr_system.system.variables
    }
    assert cr_system.system.is_satisfied_by(solution)
    assert is_acceptable(result.solution, cr_system.dependencies)


@MEDIUM
@given(data=st.data(), factor=st.integers(min_value=2, max_value=5))
def test_cone_scaling_preserves_witnesses(data, factor):
    schema = data.draw(schemas(max_classes=3))
    cls = data.draw(st.sampled_from(schema.classes))
    result = is_class_satisfiable(schema, cls)
    if not result.satisfiable:
        return
    scaled = {name: value * factor for name, value in result.solution.items()}
    model = construct_model(result.cr_system, scaled)
    assert check_model(schema, model) == []


@MEDIUM
@given(data=st.data())
def test_isa_implication_is_sound_and_complete(data):
    schema = data.draw(schemas(max_classes=3, allow_extensions=True))
    sub = data.draw(st.sampled_from(schema.classes))
    sup = data.draw(st.sampled_from(schema.classes))
    result = implies_isa(schema, sub, sup)
    if result.implied:
        # Soundness spot-check: any witness model for `sub` must keep
        # the containment.
        sat = is_class_satisfiable(schema, sub)
        if sat.satisfiable:
            model = construct_model_for_result(sat)
            assert statement_holds(model, IsaStatement(sub, sup))
    else:
        model = result.countermodel
        assert model is not None
        assert check_model(schema, model) == []
        assert not statement_holds(model, IsaStatement(sub, sup))


@MEDIUM
@given(data=st.data())
def test_lemma_3_2_equivalence(data):
    """(A)-(C) hold iff (A')-(C') hold, on random interpretations."""
    schema = data.draw(schemas(max_classes=3, allow_extensions=True))
    interpretation = data.draw(interpretations_for(schema))
    expansion = Expansion(schema)
    direct = check_model(schema, interpretation)
    expanded = check_expansion_model(expansion, interpretation)
    assert (not direct) == (not expanded), (
        f"Definition 2.2 says {sorted(str(v) for v in direct)}, "
        f"Lemma 3.2 says {sorted(str(v) for v in expanded)}"
    )


@MEDIUM
@given(data=st.data())
def test_declared_isa_statements_are_always_implied(data):
    schema = data.draw(schemas(max_classes=4))
    if not schema.isa_statements:
        return
    sub, sup = data.draw(st.sampled_from(schema.isa_statements))
    assert implies_isa(schema, sub, sup).implied


@MEDIUM
@given(data=st.data())
def test_baseline_agreement_on_isa_free_schemas(data):
    schema = data.draw(schemas(max_classes=3))
    if schema.isa_statements or schema.disjointness_groups or schema.coverings:
        return
    from repro.cr.satisfiability import satisfiable_classes

    assert baseline_satisfiable_classes(schema) == satisfiable_classes(schema)


@MEDIUM
@given(data=st.data())
def test_dsl_roundtrip_on_random_schemas(data):
    schema = data.draw(schemas(max_classes=4, allow_extensions=True))
    text = serialize_schema(schema)
    parsed = parse_schema(text)
    assert parsed.classes == schema.classes
    assert set(parsed.isa_statements) == set(schema.isa_statements)
    assert parsed.declared_cards == schema.declared_cards
    assert [r.signature for r in parsed.relationships] == [
        r.signature for r in schema.relationships
    ]
    assert set(parsed.disjointness_groups) == set(schema.disjointness_groups)
    assert set(parsed.coverings) == set(schema.coverings)


@MEDIUM
@given(data=st.data())
def test_literal_and_pruned_systems_have_the_same_acceptable_verdicts(data):
    """The inconsistent unknowns are identically zero, so both builds
    must classify every class identically."""
    schema = data.draw(schemas(max_classes=3))
    cls = data.draw(st.sampled_from(schema.classes))
    expansion = Expansion(schema)
    from repro.cr.satisfiability import acceptable_support

    pruned = build_system(expansion, mode="pruned")
    literal = build_system(expansion, mode="literal")
    support_pruned, _ = acceptable_support(pruned)
    support_literal, _ = acceptable_support(literal)
    def verdict(cr_system, support):
        return any(
            cr_system.class_var[cc] in support
            for cc in expansion.consistent_classes_containing(cls)
        )
    assert verdict(pruned, support_pruned) == verdict(literal, support_literal)


@MEDIUM
@given(data=st.data())
def test_literal_and_pruned_builds_agree_on_shared_unknowns(data):
    """The sharper form of the mode equivalence: the maximal acceptable
    supports agree *unknown by unknown* on the shared (consistent)
    unknowns, and the literal build keeps every inconsistent unknown
    identically zero."""
    from repro.cr.satisfiability import acceptable_support

    schema = data.draw(schemas(max_classes=3))
    expansion = Expansion(schema)
    pruned = build_system(expansion, mode="pruned")
    literal = build_system(expansion, mode="literal")
    support_pruned, witness_pruned = acceptable_support(pruned)
    support_literal, witness_literal = acceptable_support(literal)
    shared = set(pruned.class_unknowns()) | set(
        pruned.relationship_unknowns()
    )
    assert support_pruned <= shared
    assert support_pruned == support_literal & shared
    # Inconsistent unknowns exist only in the literal build and are
    # pinned to zero there, so its support never leaves the shared set.
    assert support_literal <= shared
    for name in set(literal.class_unknowns()) - shared:
        assert witness_literal[name] == 0
    # Each witness solves the *other* build's system on the shared
    # unknowns (extended by zero on the extra literal unknowns).
    extended = dict(witness_pruned)
    for name in literal.system.variables:
        extended.setdefault(name, Fraction(0))
    assert literal.system.is_satisfied_by(extended)
    assert pruned.system.is_satisfied_by(
        {name: witness_literal[name] for name in pruned.system.variables}
    )
