"""Unit tests for the pluggable backend registry.

Covers the registry mechanics (lookup, registration, selection
precedence: pin > ``REPRO_BACKEND`` > default), the declared
capabilities of the built-in backends, the chain degradation contract
(a :class:`SolverError` moves along, budget exhaustion propagates),
the generic acceptability fixpoint, and the naive backend's refusal of
LP primitives and its size gate.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BudgetExceededError,
    LimitExceededError,
    ReproError,
    SolverError,
)
from repro.solver.core import InternedSystem, VariableTable
from repro.solver.linear import Relation
from repro.solver.registry import (
    DEFAULT_BACKEND,
    DEFAULT_NAIVE_LIMIT,
    AcceptabilityProblem,
    BackendCapabilities,
    SolverBackend,
    active_backend,
    active_backend_name,
    available_backends,
    backend_names,
    chain_maximal_support,
    chain_positive_solution,
    fixpoint_support,
    get_backend,
    pin_backend,
    register_backend,
)


class TestRegistry:
    def test_the_four_engines_are_registered(self):
        assert set(backend_names()) >= {
            "sparse-simplex",
            "dense-simplex",
            "fourier-motzkin",
            "naive",
        }

    def test_get_backend_unknown_name(self):
        with pytest.raises(ReproError, match="unknown solver backend"):
            get_backend("cutting-planes")

    def test_available_backends_matches_names(self):
        assert tuple(b.name for b in available_backends()) == backend_names()

    def test_duplicate_registration_is_refused(self):
        with pytest.raises(ReproError, match="already registered"):
            register_backend(get_backend("sparse-simplex"))

    def test_replace_allows_reregistration(self):
        backend = get_backend("sparse-simplex")
        register_backend(backend, replace=True)
        assert get_backend("sparse-simplex") is backend


class TestCapabilities:
    def test_only_the_dense_tableau_certifies(self):
        certifying = {
            b.name for b in available_backends() if b.capabilities.certificates
        }
        assert certifying == {"dense-simplex"}

    def test_only_the_decision_procedures_are_exponential(self):
        exponential = {
            b.name for b in available_backends() if b.capabilities.exponential
        }
        assert exponential == {"naive", "pruned"}

    def test_capability_defaults(self):
        caps = BackendCapabilities()
        assert caps.equalities and caps.strict
        assert not caps.certificates and not caps.exponential


class TestSelection:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert active_backend_name() == DEFAULT_BACKEND

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dense-simplex")
        assert active_backend_name() == "dense-simplex"
        assert active_backend().name == "dense-simplex"

    def test_invalid_environment_variable_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "no-such-engine")
        with pytest.raises(ReproError, match="unknown solver backend"):
            active_backend_name()

    def test_pin_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dense-simplex")
        with pin_backend("fourier-motzkin") as backend:
            assert backend.name == "fourier-motzkin"
            assert active_backend_name() == "fourier-motzkin"
        assert active_backend_name() == "dense-simplex"

    def test_nested_pins_restore(self):
        with pin_backend("dense-simplex"):
            with pin_backend("naive"):
                assert active_backend_name() == "naive"
            assert active_backend_name() == "dense-simplex"

    def test_pinning_an_unknown_backend_fails_before_entering(self):
        with pytest.raises(ReproError, match="unknown solver backend"):
            with pin_backend("no-such-engine"):
                pass  # pragma: no cover - must not be reached


def _homogeneous_system():
    """x - y >= 0 over non-negative x, y: support {x, y} via x = y."""
    system = InternedSystem(VariableTable(["x", "y"]))
    system.add({0: 1, 1: -1}, Relation.GE)
    return system


class FaultingBackend(SolverBackend):
    """Raises the given error from every LP primitive."""

    capabilities = BackendCapabilities()

    def __init__(self, name: str, error: Exception) -> None:
        self.name = name
        self.error = error
        self.calls = 0

    def maximal_support(self, system, candidates):
        self.calls += 1
        raise self.error

    def positive_solution(self, system):
        self.calls += 1
        raise self.error


class TestChains:
    def test_solver_error_moves_to_the_next_backend(self):
        faulty = FaultingBackend("faulty", SolverError("numeric trouble"))
        system = _homogeneous_system()
        support, _ = chain_maximal_support(
            system, ["x", "y"], [faulty, get_backend("sparse-simplex")]
        )
        assert faulty.calls == 1
        assert support == frozenset({"x", "y"})

    def test_budget_exhaustion_propagates_immediately(self):
        first = FaultingBackend("first", BudgetExceededError("out of gas"))
        second = FaultingBackend("second", SolverError("unreached"))
        with pytest.raises(BudgetExceededError):
            chain_maximal_support(
                _homogeneous_system(), ["x"], [first, second]
            )
        assert second.calls == 0

    def test_the_last_error_surfaces_when_every_backend_faults(self):
        first = FaultingBackend("first", SolverError("first fault"))
        second = FaultingBackend("second", SolverError("second fault"))
        with pytest.raises(SolverError, match="second fault"):
            chain_positive_solution(_homogeneous_system(), [first, second])

    def test_positive_solution_chain_degrades_too(self):
        faulty = FaultingBackend("faulty", SolverError("numeric trouble"))
        system = _homogeneous_system()
        witness = chain_positive_solution(
            system, [faulty, get_backend("sparse-simplex")]
        )
        assert witness.feasible


def _problem(targets=frozenset({"c1"})):
    """A two-class problem where c2 is forced empty and r1 depends on it.

    The fixpoint must force r1 out (its dependency c2 leaves the
    support) while c1 stays.
    """
    system = InternedSystem(VariableTable(["c1", "c2", "r1"]))
    system.add({1: 1}, Relation.LE)  # c2 <= 0
    return AcceptabilityProblem(
        system=system,
        class_unknowns=("c1", "c2"),
        dependencies={"r1": ("c2",)},
        targets=targets,
    )


class TestAcceptability:
    @pytest.mark.parametrize(
        "name", ["sparse-simplex", "dense-simplex", "fourier-motzkin"]
    )
    def test_fixpoint_forces_dependent_unknowns_out(self, name):
        support, solution = fixpoint_support(
            _problem(), [get_backend(name)]
        )
        assert support == frozenset({"c1"})
        assert solution["r1"] == 0
        assert solution["c1"] > 0

    def test_decide_acceptable_found(self):
        backend = get_backend("sparse-simplex")
        found, witness, support = backend.decide_acceptable(_problem())
        assert found
        assert witness["c1"] > 0
        assert support == frozenset({"c1"})

    def test_decide_acceptable_not_found(self):
        backend = get_backend("sparse-simplex")
        found, witness, support = backend.decide_acceptable(
            _problem(targets=frozenset({"c2"}))
        )
        assert not found
        assert witness is None

    def test_naive_backend_agrees(self):
        found, witness, support = get_backend("naive").decide_acceptable(
            _problem(), chain=[get_backend("sparse-simplex")]
        )
        assert found
        assert witness["c1"] > 0
        assert witness["c2"] == 0 and witness["r1"] == 0


class TestNaiveBackend:
    def test_refuses_the_lp_primitives(self):
        naive = get_backend("naive")
        with pytest.raises(SolverError, match="no LP primitives"):
            naive.maximal_support(_homogeneous_system(), ["x"])
        with pytest.raises(SolverError, match="no LP primitives"):
            naive.positive_solution(_homogeneous_system())

    def test_chains_skip_over_the_naive_backend(self):
        support, _ = chain_maximal_support(
            _homogeneous_system(),
            ["x", "y"],
            [get_backend("naive"), get_backend("sparse-simplex")],
        )
        assert support == frozenset({"x", "y"})

    def test_the_size_gate_fires(self):
        wide = InternedSystem(
            VariableTable([f"c{i}" for i in range(DEFAULT_NAIVE_LIMIT + 1)])
        )
        problem = AcceptabilityProblem(
            system=wide,
            class_unknowns=wide.table.names(),
            dependencies={},
            targets=frozenset({"c0"}),
        )
        with pytest.raises(LimitExceededError, match="naive_limit"):
            get_backend("naive").decide_acceptable(problem)
