"""Unit tests for the schema DSL: lexer, parser, serializer."""

from __future__ import annotations

import pytest

from repro.cr.schema import Card, UNBOUNDED
from repro.dsl import parse_schema, serialize_schema, tokenize
from repro.errors import ParseError, SchemaError

MEETING_TEXT = """
schema Meeting {
  class Speaker;
  class Discussant isa Speaker;
  class Talk;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  cardinality Speaker in Holds.U1: (1, *);
  cardinality Discussant in Holds.U1: (0, 2);
  cardinality Talk in Holds.U2: (1, 1);
  cardinality Discussant in Participates.U3: (1, 1);
  cardinality Talk in Participates.U4: (1, *);
}
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("schema S { class A; }")
        kinds = [token.kind for token in tokens]
        assert kinds == ["keyword", "ident", "{", "keyword", "ident", ";", "}", "eof"]

    def test_positions_are_tracked(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_comments_are_skipped(self):
        tokens = tokenize("a // comment with ; and {\nb")
        assert [token.value for token in tokens[:-1]] == ["a", "b"]

    def test_numbers(self):
        tokens = tokenize("(1, 23)")
        assert tokens[1].kind == "int"
        assert tokens[3].value == "23"

    def test_bad_character_raises_with_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("class $")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 7


class TestParser:
    def test_parses_the_meeting_schema(self, meeting):
        parsed = parse_schema(MEETING_TEXT)
        assert parsed.classes == meeting.classes
        assert parsed.isa_statements == meeting.isa_statements
        assert parsed.declared_cards == meeting.declared_cards

    def test_unbounded_maximum(self):
        schema = parse_schema(
            "schema S { class A; class B;"
            " relationship R(U1: A, U2: B);"
            " cardinality A in R.U1: (3, *); }"
        )
        assert schema.card("A", "R", "U1") == Card(3, UNBOUNDED)

    def test_multiple_isa_parents(self):
        schema = parse_schema(
            "schema S { class A; class B; class C isa A, B;"
            " relationship R(U1: A, U2: B); }"
        )
        assert schema.is_subclass("C", "A")
        assert schema.is_subclass("C", "B")

    def test_forward_references_allowed(self):
        # ISA may mention a class declared later.
        schema = parse_schema(
            "schema S { class B isa A; class A;"
            " relationship R(U1: A, U2: B); }"
        )
        assert schema.is_subclass("B", "A")

    def test_disjoint_and_cover(self):
        schema = parse_schema(
            "schema S { class A; class B; class C isa A;"
            " relationship R(U1: A, U2: B);"
            " disjoint A, B;"
            " cover A by C; }"
        )
        assert schema.disjointness_groups == (frozenset({"A", "B"}),)
        assert schema.coverings == (("A", frozenset({"C"})),)

    def test_ternary_relationship(self):
        schema = parse_schema(
            "schema S { class A; class B; class C;"
            " relationship R(U1: A, U2: B, U3: C); }"
        )
        assert schema.relationship("R").arity == 3

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("schema S { class A }", "expected"),            # missing ;
            ("schema S { klass A; }", "statement"),          # bad keyword
            ("schema { class A; }", "expected"),             # missing name
            ("schema S { relationship R(); }", "expected"),  # empty roles
            (
                "schema S { class A; class B;"
                " relationship R(U1: A, U1: B); }",
                "twice",
            ),
            (
                "schema S { class A; class B; relationship R(U1: A, U2: B);"
                " cardinality A in R.U1: (x, 2); }",
                "expected",
            ),
            (
                "schema S { class A; class B; relationship R(U1: A, U2: B);"
                " cardinality A in R.U1: (1, ?); }",
                "unexpected character",
            ),
            (
                "schema S { class A; class B; relationship R(U1: A, U2: B);"
                " cardinality A in R.U1: (1, by); }",
                "integer",
            ),
            ("schema S { disjoint A; }", "two classes"),
            ("schema S { class A; } trailing", "expected"),
        ],
    )
    def test_syntax_errors(self, text, fragment):
        with pytest.raises(ParseError, match=fragment):
            parse_schema(text)

    def test_semantic_errors_surface_as_schema_errors(self):
        with pytest.raises(SchemaError):
            parse_schema(
                "schema S { class A; class B;"
                " relationship R(U1: A, U2: B);"
                " cardinality B in R.U1: (1, 2); }"
            )

    def test_parse_error_positions(self):
        with pytest.raises(ParseError) as excinfo:
            parse_schema("schema S {\n  klass A;\n}")
        assert excinfo.value.line == 2


class TestSerializer:
    def test_roundtrip_of_the_meeting_schema(self, meeting):
        text = serialize_schema(meeting)
        parsed = parse_schema(text)
        assert parsed.classes == meeting.classes
        assert parsed.isa_statements == meeting.isa_statements
        assert parsed.declared_cards == meeting.declared_cards
        assert [r.signature for r in parsed.relationships] == [
            r.signature for r in meeting.relationships
        ]
        # Serialisation is a fixpoint after one round.
        assert serialize_schema(parsed) == text

    def test_extensions_roundtrip(self):
        schema = parse_schema(
            "schema S { class A; class B; class C isa A;"
            " relationship R(U1: A, U2: B);"
            " disjoint A, B; cover A by C; }"
        )
        again = parse_schema(serialize_schema(schema))
        assert again.disjointness_groups == schema.disjointness_groups
        assert again.coverings == schema.coverings
