"""Unit tests for the Definition-2.2 model checker (and extensions)."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.checker import check_model, is_model
from repro.cr.interpretation import Interpretation


@pytest.fixture
def schema():
    return (
        SchemaBuilder()
        .classes("A", "B")
        .isa("B", "A")
        .relationship("R", U1="A", U2="B")
        .card("A", "R", "U1", minc=1, maxc=2)
        .build()
    )


def violations_by_condition(schema, interp):
    result = {}
    for violation in check_model(schema, interp):
        result.setdefault(violation.condition, []).append(violation)
    return result


class TestConditionA:
    def test_containment_satisfied(self, schema):
        interp = Interpretation.build(
            {"A": ["x"], "B": ["x"]}, {"R": [{"U1": "x", "U2": "x"}]}
        )
        assert "A" not in violations_by_condition(schema, interp)

    def test_containment_violated(self, schema):
        interp = Interpretation.build({"A": [], "B": ["x"]})
        found = violations_by_condition(schema, interp)
        assert "A" in found
        assert "B isa A" in str(found["A"][0])


class TestConditionB:
    def test_component_outside_primary_class(self, schema):
        interp = Interpretation.build(
            {"A": ["a"], "B": ["a"]},
            {"R": [{"U1": "a", "U2": "stranger"}]},
            extra_domain=["stranger"],
        )
        found = violations_by_condition(schema, interp)
        assert "B" in found

    def test_well_typed_tuples_pass(self, schema):
        interp = Interpretation.build(
            {"A": ["a", "b"], "B": ["b"]}, {"R": [{"U1": "a", "U2": "b"}]}
        )
        assert "B" not in violations_by_condition(schema, interp)


class TestConditionC:
    def test_minc_violated(self, schema):
        # a2 holds no R tuple but minc(A, R, U1) = 1.
        interp = Interpretation.build(
            {"A": ["a1", "a2"], "B": ["a1"]},
            {"R": [{"U1": "a1", "U2": "a1"}]},
        )
        found = violations_by_condition(schema, interp)
        assert any("a2" in str(v) for v in found.get("C", []))

    def test_maxc_violated(self, schema):
        interp = Interpretation.build(
            {"A": ["a"], "B": ["b1", "b2", "b3", "a"]},
            {
                "R": [
                    {"U1": "a", "U2": "b1"},
                    {"U1": "a", "U2": "b2"},
                    {"U1": "a", "U2": "b3"},
                ]
            },
        )
        # b1..b3 are in B <= A... they're not in A, which also breaks (A);
        # restrict attention to the cardinality violation of `a`.
        found = violations_by_condition(schema, interp)
        assert any("3 time(s)" in str(v) for v in found.get("C", []))

    def test_refinement_checked_on_subclass_instances(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .isa("B", "A")
            .relationship("R", U1="A", U2="A")
            .card("B", "R", "U1", maxc=0)
            .build()
        )
        # b is a B, so it may not participate at all; a may.
        interp = Interpretation.build(
            {"A": ["a", "b"], "B": ["b"]},
            {"R": [{"U1": "b", "U2": "a"}]},
        )
        found = violations_by_condition(schema, interp)
        assert found.get("C")

    def test_empty_interpretation_is_always_a_model(self, schema):
        # The paper: "every schema is satisfied by any interpretation that
        # assigns an empty set of instances to every class".
        assert is_model(schema, Interpretation.empty())


class TestExtensions:
    def test_disjointness_violation(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("R", U1="A", U2="B")
            .disjoint("A", "B")
            .build()
        )
        interp = Interpretation.build({"A": ["x"], "B": ["x"]})
        found = violations_by_condition(schema, interp)
        assert "disjointness" in found

    def test_covering_violation(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B", "C")
            .isa("B", "A")
            .isa("C", "A")
            .relationship("R", U1="A", U2="A")
            .cover("A", "B", "C")
            .build()
        )
        interp = Interpretation.build({"A": ["x"], "B": [], "C": []})
        found = violations_by_condition(schema, interp)
        assert "covering" in found

    def test_covering_satisfied(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .isa("B", "A")
            .relationship("R", U1="A", U2="A")
            .cover("A", "B")
            .build()
        )
        interp = Interpretation.build({"A": ["x"], "B": ["x"]})
        assert "covering" not in violations_by_condition(schema, interp)


class TestViolationReporting:
    def test_str_includes_condition(self, schema):
        interp = Interpretation.build({"A": [], "B": ["x"]})
        violation = check_model(schema, interp)[0]
        assert str(violation).startswith("[A]")

    def test_multiple_violations_reported_together(self, schema):
        interp = Interpretation.build(
            {"A": ["lonely"], "B": ["stray"]},
        )
        found = violations_by_condition(schema, interp)
        assert "A" in found  # stray in B but not A
        assert "C" in found  # lonely participates 0 < minc
