"""Unit tests for the disjointness and covering extensions (Section 5)."""

from __future__ import annotations

from repro.cr.expansion import Expansion
from repro.cr.satisfiability import satisfiable_classes
from repro.ext.covering import (
    with_covering,
    with_partition,
    with_total_generalization,
)
from repro.ext.disjointness import pruning_report, with_disjointness


class TestWithDisjointness:
    def test_adds_a_group(self, meeting):
        extended = with_disjointness(meeting, ("Speaker", "Talk"))
        assert frozenset({"Speaker", "Talk"}) in extended.disjointness_groups

    def test_original_schema_untouched(self, meeting):
        with_disjointness(meeting, ("Speaker", "Talk"))
        assert meeting.disjointness_groups == ()

    def test_reasoning_still_works(self, meeting):
        extended = with_disjointness(meeting, ("Speaker", "Talk"))
        assert satisfiable_classes(extended) == {
            "Speaker": True,
            "Discussant": True,
            "Talk": True,
        }

    def test_contradictory_disjointness_kills_subclass(self, meeting):
        extended = with_disjointness(meeting, ("Speaker", "Discussant"))
        verdicts = satisfiable_classes(extended)
        # Discussant <= Speaker and disjoint(Speaker, Discussant) force
        # Discussant empty; and since every talk needs a discussant, the
        # whole meeting schema collapses.
        assert verdicts["Discussant"] is False


class TestPaperPruningClaim:
    """Section 5: disjoint(Speaker, Talk) leaves 'just a few unknowns'."""

    def test_expansion_shrinks(self, meeting):
        report = pruning_report(meeting, ("Speaker", "Talk"))
        assert report.compound_classes_after < report.compound_classes_before
        assert (
            report.compound_relationships_after
            < report.compound_relationships_before
        )
        assert report.unknowns_after < report.unknowns_before

    def test_expected_sizes_for_the_meeting_schema(self, meeting):
        # Without disjointness: 5 consistent compound classes + 18
        # consistent compound relationships.  With Speaker/Talk (hence
        # also Discussant/Talk by inheritance... no — Discussant <= Speaker
        # makes {Discussant, Talk} require Speaker too, already blocked):
        # compound classes {S}, {T}, {S,D} and relationships 2x1 + 1x1.
        extended = with_disjointness(meeting, ("Speaker", "Talk"))
        expansion = Expansion(extended)
        members = {
            cc.members for cc in expansion.consistent_compound_classes()
        }
        assert members == {
            frozenset({"Speaker"}),
            frozenset({"Talk"}),
            frozenset({"Speaker", "Discussant"}),
        }
        assert len(expansion.consistent_compound_relationships()) == 3

    def test_report_pretty_mentions_reduction(self, meeting):
        report = pruning_report(meeting, ("Speaker", "Talk"))
        assert "->" in report.pretty()
        assert report.unknown_reduction_factor > 1.0


class TestCovering:
    def test_with_covering_adds_statement(self, meeting):
        extended = with_covering(meeting, "Speaker", "Discussant")
        assert ("Speaker", frozenset({"Discussant"})) in extended.coverings

    def test_covering_forces_population_into_coverers(self, meeting):
        # Cover Speaker by Discussant: every speaker is a discussant.
        # The meeting schema already implies that in finite models, so
        # satisfiability is unchanged.
        extended = with_covering(meeting, "Speaker", "Discussant")
        assert satisfiable_classes(extended)["Speaker"] is True

    def test_covering_can_make_classes_unsatisfiable(self):
        from repro.cr.builder import SchemaBuilder

        schema = (
            SchemaBuilder()
            .classes("A", "B", "X")
            .isa("B", "A")
            .relationship("R", U1="B", U2="X")
            .card("B", "R", "U1", minc=2, maxc=2)
            .card("X", "R", "U2", minc=1, maxc=1)
            .build()
        )
        # As declared, A alone is satisfiable (an A need not be a B).
        assert satisfiable_classes(schema)["A"] is True
        # Covering A by B pushes every A into B... and B is subject to a
        # Figure-1-style ratio conflict with X <= ... no conflict yet:
        covered = with_covering(schema, "A", "B")
        verdicts = satisfiable_classes(covered)
        # B itself: |R| = 2|B| and |R| = |X|; satisfiable with X twice B.
        assert verdicts["B"] is True
        assert verdicts["A"] is True

    def test_total_generalization_adds_isa_and_covering(self):
        from repro.cr.builder import SchemaBuilder

        schema = (
            SchemaBuilder()
            .classes("Vehicle", "Car", "Bike")
            .relationship("Owns", U1="Vehicle", U2="Vehicle")
            .build()
        )
        total = with_total_generalization(schema, "Vehicle", "Car", "Bike")
        assert total.is_subclass("Car", "Vehicle")
        assert total.is_subclass("Bike", "Vehicle")
        assert ("Vehicle", frozenset({"Car", "Bike"})) in total.coverings

    def test_partition_adds_disjointness_too(self):
        from repro.cr.builder import SchemaBuilder

        schema = (
            SchemaBuilder()
            .classes("Vehicle", "Car", "Bike")
            .relationship("Owns", U1="Vehicle", U2="Vehicle")
            .build()
        )
        partitioned = with_partition(schema, "Vehicle", "Car", "Bike")
        assert frozenset({"Car", "Bike"}) in partitioned.disjointness_groups
        # A partitioned hierarchy prunes the expansion: {V}, {V,C,B} are
        # inconsistent; only {V,C} and {V,B} survive.
        expansion = Expansion(partitioned)
        members = {
            cc.members for cc in expansion.consistent_compound_classes()
        }
        assert members == {
            frozenset({"Vehicle", "Car"}),
            frozenset({"Vehicle", "Bike"}),
        }
