"""Differential soundness of the static analyzer.

The analyzer is allowed to miss (Figure 1 is deliberately beyond its
reach) but never to lie: every ``error`` diagnostic claims its subject
class is empty in *every* model, which implies finite unsatisfiability,
so the full Theorem-3.3/3.4 decision procedure must agree on each one.
These properties pin that contract on random schemas drawn with
inversions, refinements, disjointness and coverings enabled — the full
surface the emptiness fixpoint reasons over.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.cr.satisfiability import is_class_satisfiable, satisfiable_classes

from tests.strategies import property_max_examples, schemas

DIFFERENTIAL = settings(
    max_examples=property_max_examples(),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

FAST = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def adversarial_schemas():
    """Schemas drawn from the analyzer's whole input surface."""
    return schemas(allow_inversions=True, allow_extensions=True)


@DIFFERENTIAL
@given(data=st.data())
def test_every_error_diagnostic_agrees_with_the_oracle(data):
    schema = data.draw(adversarial_schemas())
    report = analyze(schema)
    # The witnesses must re-verify against the declared statements…
    assert report.verify(schema)
    # …and every emptiness claim must match the full decision procedure
    # (precheck off: this is the independent expansion-based oracle).
    for cls in sorted(report.unsat_classes):
        oracle = is_class_satisfiable(schema, cls)
        assert oracle.satisfiable is False, (
            f"analyzer claimed {cls} empty but the oracle disagrees"
        )


@DIFFERENTIAL
@given(data=st.data())
def test_precheck_never_changes_a_verdict(data):
    schema = data.draw(adversarial_schemas())
    reference = satisfiable_classes(schema)
    checked = satisfiable_classes(schema, precheck=True)
    assert checked == reference


@FAST
@given(data=st.data())
def test_precheck_single_class_parity(data):
    schema = data.draw(adversarial_schemas())
    cls = data.draw(st.sampled_from(schema.classes))
    reference = is_class_satisfiable(schema, cls)
    checked = is_class_satisfiable(schema, cls, precheck=True)
    assert checked.satisfiable == reference.satisfiable
    if checked.engine == "analysis":
        # A short-circuit must carry its proof.
        assert checked.diagnostic is not None
        assert checked.diagnostic.verify(schema)


@FAST
@given(data=st.data())
def test_analysis_is_deterministic(data):
    schema = data.draw(adversarial_schemas())
    first = analyze(schema)
    second = analyze(schema)
    assert first.as_dict() == second.as_dict()
