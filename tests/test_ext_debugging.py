"""Unit tests for the schema-debugging extension (MUS extraction)."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import CardinalityDeclaration, IsaStatement
from repro.cr.satisfiability import is_class_satisfiable
from repro.errors import ReproError
from repro.ext.debugging import (
    minimal_unsatisfiable_constraints,
    quickxplain_unsatisfiable_constraints,
)
from repro.paper import figure1_schema, refined_meeting_schema

ALGORITHMS = [
    minimal_unsatisfiable_constraints,
    quickxplain_unsatisfiable_constraints,
]


def assert_is_mus(schema, cls, mus):
    """Check set-inclusion minimality: the MUS keeps `cls` unsatisfiable
    and every single statement in it is necessary."""
    all_constraints = schema.constraints()
    outside = [c for c in all_constraints if c not in set(mus)]
    reduced = schema.without_constraints(outside)
    assert not is_class_satisfiable(reduced, cls).satisfiable
    for statement in mus:
        weaker = schema.without_constraints(outside + [statement])
        assert is_class_satisfiable(weaker, cls).satisfiable, (
            f"{statement.pretty()} is not necessary"
        )


class TestFigure1Debugging:
    @pytest.mark.parametrize("extract", ALGORITHMS)
    def test_mus_is_the_whole_conflict(self, extract):
        schema = figure1_schema()
        report = extract(schema, "D")
        # The Figure-1 conflict needs all three statements: D isa C,
        # minc(C, R, V1) = 2, maxc(D, R, V2) = 1.
        kinds = sorted(type(s).__name__ for s in report.mus)
        assert kinds == [
            "CardinalityDeclaration",
            "CardinalityDeclaration",
            "IsaStatement",
        ]
        assert_is_mus(schema, "D", report.mus)

    @pytest.mark.parametrize("extract", ALGORITHMS)
    def test_for_class_c_the_isa_is_still_needed(self, extract):
        # C is empty for the same reason: the conflict flows through D.
        schema = figure1_schema()
        report = extract(schema, "C")
        assert IsaStatement("D", "C") in report.mus
        assert_is_mus(schema, "C", report.mus)


class TestRefinedMeetingDebugging:
    @pytest.mark.parametrize("extract", ALGORITHMS)
    def test_whole_schema_is_the_conflict(self, extract):
        # The Section-3.3 counting argument genuinely uses every one of
        # the six constraints, so the MUS is the full constraint set —
        # and minimality means dropping ANY of them restores
        # satisfiability.
        schema = refined_meeting_schema()
        report = extract(schema, "Speaker")
        assert_is_mus(schema, "Speaker", report.mus)
        assert len(report.mus) == len(schema.constraints())

    @pytest.mark.parametrize("extract", ALGORITHMS)
    def test_noise_constraint_excluded_from_mus(self, extract):
        # Add an unrelated constraint; it must not appear in the MUS.
        base = refined_meeting_schema()
        noisy = (
            SchemaBuilder("Noisy")
            .classes(*base.classes, "Room")
            .isa("Discussant", "Speaker")
            .relationship("Holds", U1="Speaker", U2="Talk")
            .relationship("Participates", U3="Discussant", U4="Talk")
            .relationship("Hosted", W1="Talk", W2="Room")
            .card("Speaker", "Holds", "U1", minc=1)
            .card("Discussant", "Holds", "U1", minc=2, maxc=2)
            .card("Talk", "Holds", "U2", minc=1, maxc=1)
            .card("Discussant", "Participates", "U3", minc=1, maxc=1)
            .card("Talk", "Participates", "U4", minc=1)
            .card("Talk", "Hosted", "W1", minc=1, maxc=1)
            .build()
        )
        report = extract(noisy, "Speaker")
        assert_is_mus(noisy, "Speaker", report.mus)
        for statement in report.mus:
            if isinstance(statement, CardinalityDeclaration):
                assert statement.rel != "Hosted", "noise constraint in MUS"

    def test_deletion_and_quickxplain_agree_on_unsatisfiability(self):
        schema = refined_meeting_schema()
        deletion = minimal_unsatisfiable_constraints(schema, "Speaker")
        quickxplain = quickxplain_unsatisfiable_constraints(schema, "Speaker")
        for report in (deletion, quickxplain):
            assert_is_mus(schema, "Speaker", report.mus)

    def test_check_counters_are_recorded(self):
        schema = figure1_schema()
        deletion = minimal_unsatisfiable_constraints(schema, "D")
        quickxplain = quickxplain_unsatisfiable_constraints(schema, "D")
        assert deletion.checks >= len(schema.constraints())
        assert quickxplain.checks > 0

    def test_pretty_report(self):
        report = minimal_unsatisfiable_constraints(figure1_schema(), "D")
        text = report.pretty()
        assert "unsatisfiable" in text
        assert "isa" in text


class TestSatisfiableInputRejected:
    @pytest.mark.parametrize("extract", ALGORITHMS)
    def test_debugging_a_satisfiable_class_raises(self, meeting, extract):
        with pytest.raises(ReproError, match="nothing to debug"):
            extract(meeting, "Speaker")


class TestSeededConflicts:
    """Conflicts planted in larger schemas must be isolated exactly."""

    def build_schema_with_noise(self):
        return (
            SchemaBuilder("Seeded")
            .classes("A", "B", "N1", "N2")
            .isa("B", "A")
            .relationship("R", U1="A", U2="B")
            .card("A", "R", "U1", minc=2)
            .card("B", "R", "U2", maxc=1)
            # Noise: a second, harmless relationship with constraints.
            .relationship("Q", V1="N1", V2="N2")
            .card("N1", "Q", "V1", minc=1)
            .card("N2", "Q", "V2", minc=1, maxc=4)
            .build()
        )

    @pytest.mark.parametrize("extract", ALGORITHMS)
    def test_noise_constraints_excluded(self, extract):
        schema = self.build_schema_with_noise()
        report = extract(schema, "A")
        assert_is_mus(schema, "A", report.mus)
        for statement in report.mus:
            if isinstance(statement, CardinalityDeclaration):
                assert statement.rel == "R", "noise constraint in MUS"

    def test_quickxplain_uses_fewer_checks_on_seeded_conflicts(self):
        # With a small conflict inside many constraints, QuickXplain's
        # divide-and-conquer should not exceed the deletion scan.
        schema = self.build_schema_with_noise()
        deletion = minimal_unsatisfiable_constraints(schema, "A")
        quickxplain = quickxplain_unsatisfiable_constraints(schema, "A")
        assert quickxplain.checks <= deletion.checks + len(schema.constraints())
