"""Unit tests for interpretations and labelled tuples."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.interpretation import Interpretation, LabeledTuple
from repro.errors import InterpretationError


@pytest.fixture
def schema():
    return (
        SchemaBuilder()
        .classes("A", "B")
        .isa("B", "A")
        .relationship("R", U1="A", U2="B")
        .build()
    )


class TestLabeledTuple:
    def test_access_by_role(self):
        labelled = LabeledTuple({"U1": "a", "U2": "b"})
        assert labelled["U1"] == "a"
        assert labelled.get("U2") == "b"
        assert labelled.get("U9") is None

    def test_missing_role_raises(self):
        with pytest.raises(KeyError):
            LabeledTuple({"U1": "a"})["U2"]

    def test_equality_is_content_based(self):
        assert LabeledTuple({"U1": "a", "U2": "b"}) == LabeledTuple(
            {"U2": "b", "U1": "a"}
        )

    def test_hashable_and_set_semantics(self):
        tuples = {
            LabeledTuple({"U1": "a"}),
            LabeledTuple({"U1": "a"}),
            LabeledTuple({"U1": "b"}),
        }
        assert len(tuples) == 2

    def test_empty_rejected(self):
        with pytest.raises(InterpretationError):
            LabeledTuple({})

    def test_pretty(self):
        assert LabeledTuple({"U1": "a", "U2": "b"}).pretty() == "<U1: a, U2: b>"

    def test_roles_sorted(self):
        assert LabeledTuple({"U2": "b", "U1": "a"}).roles == ("U1", "U2")


class TestInterpretationBasics:
    def test_empty_interpretation(self):
        empty = Interpretation.empty()
        assert not empty.domain
        assert empty.instances_of("anything") == frozenset()

    def test_build_collects_domain(self):
        interp = Interpretation.build(
            {"A": ["a1"], "B": ["b1"]},
            {"R": [{"U1": "a1", "U2": "b1"}]},
            extra_domain=["lonely"],
        )
        assert interp.domain == {"a1", "b1", "lonely"}

    def test_participation_count(self):
        interp = Interpretation.build(
            {"A": ["a1", "a2"], "B": ["b1"]},
            {
                "R": [
                    {"U1": "a1", "U2": "b1"},
                    {"U1": "a2", "U2": "b1"},
                ]
            },
        )
        assert interp.participation_count("R", "U1", "a1") == 1
        assert interp.participation_count("R", "U2", "b1") == 2
        assert interp.participation_count("R", "U1", "ghost") == 0

    def test_duplicate_tuples_collapse(self):
        interp = Interpretation.build(
            {"A": ["a"], "B": ["b"]},
            {"R": [{"U1": "a", "U2": "b"}, {"U1": "a", "U2": "b"}]},
        )
        assert len(interp.tuples_of("R")) == 1

    def test_summary_mentions_sizes(self):
        interp = Interpretation.build({"A": ["a1", "a2"]})
        assert "|A|=2" in interp.summary()


class TestCompoundExtensions:
    def test_partition_semantics(self):
        # a1 is only in A; ab is in both A and B.
        interp = Interpretation.build({"A": ["a1", "ab"], "B": ["ab"]})
        only_a = interp.compound_extension(frozenset({"A"}), ["A", "B"])
        both = interp.compound_extension(frozenset({"A", "B"}), ["A", "B"])
        assert only_a == {"a1"}
        assert both == {"ab"}

    def test_compound_extensions_partition_the_union(self):
        interp = Interpretation.build({"A": ["x", "y"], "B": ["y", "z"]})
        classes = ["A", "B"]
        cells = [
            interp.compound_extension(frozenset(members), classes)
            for members in ({"A"}, {"B"}, {"A", "B"})
        ]
        union = set().union(*cells)
        assert union == {"x", "y", "z"}
        assert sum(len(cell) for cell in cells) == len(union)

    def test_empty_compound_rejected(self):
        interp = Interpretation.build({"A": ["x"]})
        with pytest.raises(InterpretationError):
            interp.compound_extension(frozenset(), ["A"])

    def test_compound_tuples(self):
        interp = Interpretation.build(
            {"A": ["a", "ab"], "B": ["ab", "b"]},
            {"R": [{"U1": "a", "U2": "ab"}, {"U1": "ab", "U2": "b"}]},
        )
        classes = ["A", "B"]
        only_a_tuples = interp.compound_tuples(
            "R",
            {"U1": frozenset({"A"}), "U2": frozenset({"A", "B"})},
            classes,
        )
        assert only_a_tuples == {LabeledTuple({"U1": "a", "U2": "ab"})}


class TestWellFormedness:
    def test_valid_interpretation_passes(self, schema):
        interp = Interpretation.build(
            {"A": ["a"], "B": ["a"]}, {"R": [{"U1": "a", "U2": "a"}]}
        )
        interp.check_well_formed(schema)  # must not raise

    def test_unknown_class_rejected(self, schema):
        interp = Interpretation.build({"Ghost": ["g"]})
        with pytest.raises(InterpretationError):
            interp.check_well_formed(schema)

    def test_unknown_relationship_rejected(self, schema):
        interp = Interpretation.build(
            {"A": ["a"]}, {"Ghost": [{"U1": "a", "U2": "a"}]}
        )
        with pytest.raises(InterpretationError):
            interp.check_well_formed(schema)

    def test_wrong_roles_rejected(self, schema):
        interp = Interpretation.build(
            {"A": ["a"], "B": ["a"]}, {"R": [{"U1": "a", "WRONG": "a"}]}
        )
        with pytest.raises(InterpretationError):
            interp.check_well_formed(schema)

    def test_extension_outside_domain_rejected(self, schema):
        interp = Interpretation(
            domain=frozenset({"a"}),
            class_extensions={"A": frozenset({"a", "stray"})},
        )
        with pytest.raises(InterpretationError):
            interp.check_well_formed(schema)

    def test_tuple_value_outside_domain_rejected(self, schema):
        interp = Interpretation(
            domain=frozenset({"a"}),
            class_extensions={"A": frozenset({"a"}), "B": frozenset({"a"})},
            relationship_extensions={
                "R": frozenset({LabeledTuple({"U1": "a", "U2": "stray"})})
            },
        )
        with pytest.raises(InterpretationError):
            interp.check_well_formed(schema)
