"""Unit tests for the disequation-system generator (Section 3.2 / Figure 5)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.expansion import Expansion
from repro.cr.system import build_system
from repro.errors import ReproError
from repro.solver.linear import Relation


class TestUnknownNaming:
    def test_paper_names_for_meeting_schema(self, meeting_literal_system):
        names = set(meeting_literal_system.class_var.values())
        assert names == {f"c{i}" for i in range(1, 8)}
        rel_names = set(meeting_literal_system.rel_var.values())
        assert {"h34", "p47", "h11", "p77"} <= rel_names
        assert len(rel_names) == 98

    def test_pruned_mode_names_are_sparse(self, meeting_system):
        assert set(meeting_system.class_var.values()) == {
            "c1",
            "c3",
            "c4",
            "c5",
            "c7",
        }
        assert len(meeting_system.rel_var) == 18

    def test_prefix_collision_with_class_unknowns_avoided(self):
        # A relationship starting with "c" cannot use the initial as its
        # prefix — "c12" would collide with compound-class unknowns.
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("Contains", U1="A", U2="B")
            .build()
        )
        cr_system = build_system(Expansion(schema), mode="pruned")
        for name in cr_system.rel_var.values():
            assert name.startswith("contains_")

    def test_duplicate_initials_fall_back_to_full_names(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .relationship("Rel1", U1="A", U2="B")
            .relationship("Rel2", U3="A", U4="B")
            .build()
        )
        cr_system = build_system(Expansion(schema), mode="pruned")
        prefixes = {name.split("_")[0] for name in cr_system.rel_var.values()}
        assert prefixes == {"rel1", "rel2"}

    def test_large_indices_use_separators(self):
        builder = SchemaBuilder().classes(*[f"K{i}" for i in range(5)])
        builder.relationship("R", U1="K0", U2="K1")
        # No ISA: every subset is consistent; indices go to 31 > 9.
        cr_system = build_system(Expansion(builder.build()), mode="pruned")
        sample = next(iter(cr_system.rel_var.values()))
        assert "_" in sample


class TestSystemShape:
    def test_homogeneous_with_integer_coefficients(self, meeting_system):
        assert meeting_system.system.is_homogeneous()
        for constraint in meeting_system.system:
            for coeff in constraint.expr.coefficients.values():
                assert coeff.denominator == 1

    def test_no_strict_constraints(self, meeting_system):
        assert not meeting_system.system.has_strict_constraints()

    def test_literal_mode_pins_inconsistent_unknowns(
        self, meeting_literal_system
    ):
        zero_rows = [
            c
            for c in meeting_literal_system.system
            if c.label and c.label.startswith("zero-")
        ]
        # Figure 5: c2 = c6 = 0, plus one row per inconsistent compound
        # relationship (98 - 18 of them).
        assert len(zero_rows) == 2 + (98 - 18)
        assert all(c.relation is Relation.EQ for c in zero_rows)

    def test_figure5_min_disequation_for_c4(self, meeting_literal_system):
        # Figure 5 row: c4 <= h43 + h45 + h47 (minc(C4, Holds, U1) = 1).
        target = next(
            c
            for c in meeting_literal_system.system
            if c.label == "min:Holds:U1:4"
        )
        coeffs = target.expr.coefficients
        assert coeffs == {
            "c4": Fraction(1),
            "h43": Fraction(-1),
            "h45": Fraction(-1),
            "h47": Fraction(-1),
        }

    def test_figure5_max_disequation_for_c4(self, meeting_literal_system):
        # Figure 5 row: 2*c4 >= h43 + h45 + h47 (maxc(C4, Holds, U1) = 2).
        target = next(
            c
            for c in meeting_literal_system.system
            if c.label == "max:Holds:U1:4"
        )
        assert target.expr.coefficient("c4") == 2
        assert target.relation is Relation.GE

    def test_figure5_role2_sums_over_first_index(self, meeting_literal_system):
        # cj <= h1j + h4j + h5j + h7j for role U2 (here j = 3).
        target = next(
            c
            for c in meeting_literal_system.system
            if c.label == "min:Holds:U2:3"
        )
        assert set(target.expr.coefficients) == {"c3", "h13", "h43", "h53", "h73"}

    def test_pruned_and_literal_agree_on_shared_rows(
        self, meeting_system, meeting_literal_system
    ):
        pruned_labels = {
            c.label for c in meeting_system.system if c.label.startswith(("min", "max"))
        }
        literal_labels = {
            c.label
            for c in meeting_literal_system.system
            if c.label and c.label.startswith(("min", "max"))
        }
        assert pruned_labels == literal_labels

    def test_unknown_mode_rejected(self, meeting_expansion):
        with pytest.raises(ReproError):
            build_system(meeting_expansion, mode="fancy")


class TestDerivedExpressions:
    def test_class_population_expr(self, meeting_system):
        expr = meeting_system.class_population_expr("Speaker")
        assert set(expr.coefficients) == {"c1", "c4", "c5", "c7"}

    def test_class_positivity_is_strict(self, meeting_system):
        constraint = meeting_system.class_positivity("Speaker")
        assert constraint.relation is Relation.GT

    def test_positivity_for_uncoverable_class_is_contradictory(self):
        schema = (
            SchemaBuilder()
            .classes("A", "B")
            .isa("A", "B")
            .isa("B", "A")
            .relationship("R", U1="A", U2="B")
            .disjoint("A", "B")
            .build()
        )
        # A <= B and B <= A with A,B disjoint: no consistent compound
        # class contains A.
        cr_system = build_system(Expansion(schema), mode="pruned")
        constraint = cr_system.class_positivity("A")
        assert constraint.expr.is_constant()
        assert not constraint.is_satisfied_by({})

    def test_isa_counterexample_positivity(self, meeting_system):
        constraint = meeting_system.isa_counterexample_positivity(
            "Speaker", "Discussant"
        )
        # Compound classes with Speaker but not Discussant: C1, C5.
        assert set(constraint.expr.coefficients) == {"c1", "c5"}

    def test_joint_population_expr(self, meeting_system):
        expr = meeting_system.joint_population_expr(("Speaker", "Talk"))
        assert set(expr.coefficients) == {"c5", "c7"}

    def test_dependencies_cover_all_consistent_relationship_unknowns(
        self, meeting_system
    ):
        assert set(meeting_system.dependencies) == set(
            meeting_system.rel_var.values()
        )
        for rel_unknown, class_unknowns in meeting_system.dependencies.items():
            assert len(class_unknowns) == 2
            assert all(name.startswith("c") for name in class_unknowns)
