"""Unit tests for resource budgets and graceful degradation."""

from __future__ import annotations

import pytest

from repro.cr.expansion import Expansion, ExpansionLimits
from repro.cr.implication import implies_isa
from repro.cr.satisfiability import (
    is_class_satisfiable,
    is_schema_fully_satisfiable,
    satisfiable_classes,
)
from repro.errors import (
    BudgetExceededError,
    CancelledError,
    LimitExceededError,
    ReproError,
)
from repro.paper import figure1_schema, meeting_schema
from repro.runtime.budget import (
    Budget,
    ProgressSnapshot,
    activate,
    current_budget,
    run_governed,
)
from repro.runtime.outcome import ImplicationVerdict, Verdict


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBudgetUnit:
    def test_counters_accumulate(self):
        budget = Budget()
        budget.charge_expansion(3)
        budget.charge_expansion()
        budget.charge_solver_call()
        budget.charge_pivots(10)
        assert budget.expansion_nodes == 4
        assert budget.solver_calls == 1
        assert budget.pivots == 10

    def test_expansion_cap_exhausts_with_snapshot(self):
        budget = Budget(max_expansion_nodes=2)
        budget.enter_phase("expansion")
        budget.charge_expansion(2)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge_expansion()
        snapshot = excinfo.value.snapshot
        assert isinstance(snapshot, ProgressSnapshot)
        assert snapshot.reason == "expansion-nodes"
        assert snapshot.phase == "expansion"
        assert snapshot.expansion_nodes == 3
        assert "expansion-nodes" in str(excinfo.value)

    def test_solver_call_cap(self):
        budget = Budget(max_solver_calls=1)
        budget.charge_solver_call()
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge_solver_call()
        assert excinfo.value.snapshot.reason == "solver-calls"

    def test_pivot_cap(self):
        budget = Budget(max_pivots=5)
        budget.charge_pivots(5)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge_pivots()
        assert excinfo.value.snapshot.reason == "pivots"

    def test_timeout_with_fake_clock(self):
        clock = FakeClock()
        budget = Budget(timeout=10.0, clock=clock)
        budget.start()
        clock.now = 9.999
        budget.check()  # still inside the deadline
        clock.now = 10.0
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.check()
        assert excinfo.value.snapshot.reason == "timeout"

    def test_zero_timeout_exhausts_at_first_check(self):
        budget = Budget(timeout=0, clock=FakeClock())
        budget.start()
        with pytest.raises(BudgetExceededError):
            budget.check()

    def test_fine_grained_charges_consult_clock_eventually(self):
        clock = FakeClock()
        budget = Budget(timeout=1.0, clock=clock)
        budget.start()
        clock.now = 5.0
        # Individual ticks defer the clock read, but within one tick
        # window the deadline must be noticed.
        with pytest.raises(BudgetExceededError):
            for _ in range(200):
                budget.charge_pivots()

    def test_cancel_raises_cancelled_error(self):
        budget = Budget()
        budget.cancel()
        assert budget.cancelled
        with pytest.raises(CancelledError) as excinfo:
            budget.check()
        assert excinfo.value.snapshot.reason == "cancelled"
        # CancelledError is a BudgetExceededError, so governed entry
        # points degrade it like any other exhaustion.
        assert isinstance(excinfo.value, BudgetExceededError)

    def test_cancel_noticed_by_fine_grained_charge(self):
        budget = Budget()
        budget.cancel()
        with pytest.raises(CancelledError):
            budget.charge_expansion()

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        budget.start()
        clock.now = 7.0
        budget.start()  # must not re-anchor
        assert budget.elapsed() == 7.0

    def test_remaining_time(self):
        clock = FakeClock()
        budget = Budget(timeout=10.0, clock=clock)
        budget.start()
        clock.now = 4.0
        assert budget.remaining_time() == 6.0
        clock.now = 40.0
        assert budget.remaining_time() == 0.0
        assert Budget().remaining_time() is None

    def test_negative_caps_rejected(self):
        with pytest.raises(ReproError):
            Budget(timeout=-1)
        with pytest.raises(ReproError):
            Budget(max_expansion_nodes=-5)

    def test_snapshot_pretty_mentions_all_counters(self):
        budget = Budget()
        budget.enter_phase("decide:fixpoint")
        budget.charge_expansion(7)
        text = budget.snapshot("in-progress").pretty()
        assert "decide:fixpoint" in text
        assert "7 expansion nodes" in text


class TestAmbientActivation:
    def test_activate_installs_and_restores(self):
        assert current_budget() is None
        budget = Budget()
        with activate(budget):
            assert current_budget() is budget
            inner = Budget()
            with activate(inner):
                assert current_budget() is inner
            assert current_budget() is budget
        assert current_budget() is None

    def test_activate_none_is_transparent(self):
        budget = Budget()
        with activate(budget):
            with activate(None):
                assert current_budget() is budget

    def test_run_governed_degrades_with_explicit_budget(self):
        budget = Budget(max_expansion_nodes=0)

        def compute():
            current_budget().charge_expansion()
            raise AssertionError("unreachable")

        result = run_governed(budget, compute, lambda error: ("degraded", error))
        assert result[0] == "degraded"
        assert isinstance(result[1], BudgetExceededError)

    def test_run_governed_propagates_ambient_exhaustion(self):
        ambient = Budget(max_expansion_nodes=0)
        with activate(ambient):
            with pytest.raises(BudgetExceededError):
                run_governed(
                    None,
                    lambda: current_budget().charge_expansion(),
                    lambda error: "degraded",
                )


class TestGovernedEntryPoints:
    def test_is_class_satisfiable_degrades_to_unknown(self):
        result = is_class_satisfiable(
            meeting_schema(), "Speaker", budget=Budget(max_expansion_nodes=1)
        )
        assert result.verdict is Verdict.UNKNOWN
        assert not result.satisfiable  # conservative two-valued view
        assert not result.verdict  # UNKNOWN is falsy
        assert result.unknown_reason is not None
        assert result.snapshot.reason == "expansion-nodes"

    def test_unbudgeted_call_unchanged(self):
        result = is_class_satisfiable(meeting_schema(), "Speaker")
        assert result.verdict is Verdict.SAT
        assert result.satisfiable

    def test_generous_budget_decides_normally(self):
        budget = Budget(timeout=60.0, max_expansion_nodes=100_000)
        result = is_class_satisfiable(meeting_schema(), "Speaker", budget=budget)
        assert result.verdict is Verdict.SAT
        assert budget.expansion_nodes > 0
        assert budget.solver_calls > 0

    def test_satisfiable_classes_degrades_every_class(self):
        schema = meeting_schema()
        verdicts = satisfiable_classes(schema, budget=Budget(timeout=0))
        assert set(verdicts) == set(schema.classes)
        assert all(value is Verdict.UNKNOWN for value in verdicts.values())
        # Falsy UNKNOWNs keep aggregate checks conservative.
        assert not all(verdicts.values())

    def test_satisfiable_classes_booleans_when_decided(self):
        verdicts = satisfiable_classes(
            figure1_schema(), budget=Budget(timeout=60.0)
        )
        assert all(isinstance(value, bool) for value in verdicts.values())

    def test_is_schema_fully_satisfiable_conservative_on_exhaustion(self):
        assert not is_schema_fully_satisfiable(
            meeting_schema(), budget=Budget(timeout=0)
        )

    def test_implies_degrades_to_unknown(self):
        result = implies_isa(
            meeting_schema(),
            "Discussant",
            "Speaker",
            budget=Budget(max_solver_calls=1),
        )
        assert result.verdict is ImplicationVerdict.UNKNOWN
        assert not result.implied
        assert "unknown" in result.pretty()

    def test_implies_unbudgeted_unchanged(self):
        result = implies_isa(meeting_schema(), "Discussant", "Speaker")
        assert result.verdict is ImplicationVerdict.IMPLIED
        assert result.implied

    def test_ambient_budget_raises_without_explicit_parameter(self):
        with activate(Budget(max_expansion_nodes=1)):
            with pytest.raises(BudgetExceededError):
                is_class_satisfiable(meeting_schema(), "Speaker")

    def test_cancelled_budget_degrades_to_unknown(self):
        budget = Budget()
        budget.cancel()
        result = is_class_satisfiable(meeting_schema(), "Speaker", budget=budget)
        assert result.verdict is Verdict.UNKNOWN
        assert result.snapshot.reason == "cancelled"

    def test_sequential_calls_share_one_account(self):
        budget = Budget(max_solver_calls=200)
        first = is_class_satisfiable(meeting_schema(), "Speaker", budget=budget)
        after_first = budget.solver_calls
        second = is_class_satisfiable(meeting_schema(), "Talk", budget=budget)
        assert first.satisfiable and second.satisfiable
        assert budget.solver_calls > after_first


class TestTypedLimits:
    def test_expansion_guard_raises_typed_error(self):
        schema = meeting_schema()
        limits = ExpansionLimits(max_all_compound_classes=1)
        with pytest.raises(LimitExceededError):
            list(Expansion(schema, limits).all_compound_classes())

    def test_limit_error_is_a_repro_error(self):
        # Backward compatibility: callers catching ReproError still work.
        assert issubclass(LimitExceededError, ReproError)
        assert issubclass(BudgetExceededError, LimitExceededError)

    def test_naive_limit_parameter(self):
        schema = meeting_schema()
        with pytest.raises(LimitExceededError) as excinfo:
            is_class_satisfiable(schema, "Speaker", engine="naive", naive_limit=1)
        assert "naive_limit of 1" in str(excinfo.value)
        # A permissive limit lets the naive engine run to completion.
        result = is_class_satisfiable(
            schema, "Speaker", engine="naive", naive_limit=32
        )
        assert result.satisfiable


class TestVerdictEnums:
    def test_truthiness(self):
        assert Verdict.SAT
        assert not Verdict.UNSAT
        assert not Verdict.UNKNOWN
        assert ImplicationVerdict.IMPLIED
        assert not ImplicationVerdict.NOT_IMPLIED
        assert not ImplicationVerdict.UNKNOWN

    def test_from_bool_and_decided(self):
        assert Verdict.from_bool(True) is Verdict.SAT
        assert Verdict.from_bool(False) is Verdict.UNSAT
        assert Verdict.SAT.decided and Verdict.UNSAT.decided
        assert not Verdict.UNKNOWN.decided
        assert ImplicationVerdict.from_bool(True) is ImplicationVerdict.IMPLIED
        assert not ImplicationVerdict.UNKNOWN.decided
