"""Integration tests: every figure of the paper, end to end.

One test class per paper artifact (Figures 1–7 plus the Section-3.3
negative example), exercising the full pipeline from schema entry to
rendered output.  These are the executable counterpart of
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro import (
    check_model,
    construct_model_for_result,
    implies,
    is_class_satisfiable,
    parse_schema,
    satisfiable_classes,
    serialize_schema,
)
from repro.cr.expansion import Expansion
from repro.cr.implication import statement_holds
from repro.cr.satisfiability import acceptable_support
from repro.cr.system import build_system
from repro.er import er_to_cr, render_er_diagram
from repro.paper import (
    figure1_er,
    figure1_schema,
    figure7_queries,
    meeting_er,
    meeting_schema,
    refined_meeting_schema,
)


class TestFigure1:
    """A finitely unsatisfiable ER-diagram."""

    def test_schema_admits_no_finite_population(self):
        assert satisfiable_classes(figure1_schema()) == {
            "C": False,
            "D": False,
        }

    def test_unrestricted_lp_relaxation_alone_would_miss_it(self):
        # Without the acceptability requirement the zero solution always
        # exists — the paper's point that plain satisfiability is
        # trivial and *class* satisfiability is the right notion.
        expansion = Expansion(figure1_schema())
        cr_system = build_system(expansion, mode="pruned")
        zero = {name: 0 for name in cr_system.system.variables}
        assert cr_system.system.is_satisfied_by(zero)

    def test_acceptable_support_is_empty(self):
        expansion = Expansion(figure1_schema())
        cr_system = build_system(expansion, mode="pruned")
        support, solution = acceptable_support(cr_system)
        assert support == frozenset()
        assert all(value == 0 for value in solution.values())

    def test_er_diagram_renders(self):
        text = render_er_diagram(figure1_er())
        assert "(2,N)" in text
        assert "(0,1)" in text


class TestFigures2And3:
    """The meeting CR-diagram and its schema."""

    def test_er_and_direct_construction_agree(self):
        assert er_to_cr(meeting_er()).declared_cards == (
            meeting_schema().declared_cards
        )

    def test_schema_round_trips_through_the_dsl(self):
        schema = meeting_schema()
        assert (
            parse_schema(serialize_schema(schema)).declared_cards
            == schema.declared_cards
        )

    def test_every_class_is_satisfiable(self, meeting):
        assert all(satisfiable_classes(meeting).values())


class TestFigure4:
    """The expansion: literal content checked in test_expansion.py; here
    the headline numbers."""

    def test_counts(self, meeting_expansion):
        summary = meeting_expansion.size_summary()
        assert summary["all_compound_classes"] == 7
        assert summary["all_compound_relationships"] == 98
        assert summary["consistent_compound_classes"] == 5
        assert summary["consistent_compound_relationships"] == 18


class TestFigure5:
    """The disequation system."""

    def test_unknown_inventory(self, meeting_literal_system):
        assert len(meeting_literal_system.class_var) == 7
        assert len(meeting_literal_system.rel_var) == 98

    def test_paper_rows_present(self, meeting_literal_system):
        rendered = {
            c.pretty() for c in meeting_literal_system.system.constraints
        }
        # One representative row from every group of Figure 5.
        assert "c2 == 0" in rendered or "c2 == 0 " in {
            r + " " for r in rendered
        }
        assert "c1 <= h13 + h15 + h17" in rendered
        assert "2*c4 >= h43 + h45 + h47" in rendered
        assert "c3 <= p43 + p73" in rendered


class TestFigure6:
    """Satisfiability of Speaker, witness solution, derived model."""

    def test_paper_solution_is_found_shaped(self, meeting):
        result = is_class_satisfiable(meeting, "Speaker")
        assert result.satisfiable
        # The paper's particular solution has support {c3, c4, h34, p34}
        # (in its numbering h34 pairs roles U1:C3? no — H<4,3>); ours may
        # differ, but it must be an acceptable solution populating
        # Speaker, and the model construction must realise it.
        model = construct_model_for_result(result)
        assert check_model(meeting, model) == []
        assert model.instances_of("Speaker")

    def test_the_paper_exact_solution_also_works(self, meeting_system):
        # X(c3) = X(c4) = 2, X(h43) = X(p43) = 2, everything else 0 —
        # the solution of Figure 6 (in our naming h43 = <U1:C4, U2:C3>).
        from repro.cr.construction import construct_model

        solution = {name: 0 for name in meeting_system.system.variables}
        solution.update({"c3": 2, "c4": 2, "h43": 2, "p43": 2})
        model = construct_model(meeting_system, solution)
        schema = meeting_system.expansion.schema
        assert check_model(schema, model) == []
        # Two speakers who are discussants, two talks: John & Mary.
        assert len(model.instances_of("Speaker")) == 2
        assert len(model.instances_of("Discussant")) == 2
        assert len(model.instances_of("Talk")) == 2


class TestSection33NegativeExample:
    """minc(Discussant, Holds, U1) = 2 makes the system unsolvable."""

    def test_all_classes_die(self):
        assert satisfiable_classes(refined_meeting_schema()) == {
            "Speaker": False,
            "Discussant": False,
            "Talk": False,
        }

    def test_paper_explanation_holds_in_the_base_schema(self, meeting):
        # "the original constraints forced each talk to have exactly one
        # discussant and also each speaker to be a discussant and to
        # hold exactly one talk"
        assert implies(meeting, figure7_queries()[0]).implied  # Speaker isa D
        from repro.cr.constraints import MaxCardinalityStatement

        assert implies(
            meeting, MaxCardinalityStatement("Talk", "Participates", "U4", 1)
        ).implied
        assert implies(
            meeting, MaxCardinalityStatement("Speaker", "Holds", "U1", 1)
        ).implied


class TestFigure7:
    """The three advertised inferences, with counter-model controls."""

    @pytest.mark.parametrize("query_index", [0, 1, 2])
    def test_inference(self, meeting, query_index):
        query = figure7_queries()[query_index]
        assert implies(meeting, query).implied

    def test_non_implications_come_with_countermodels(self, meeting):
        from repro.cr.constraints import IsaStatement

        result = implies(meeting, IsaStatement("Talk", "Speaker"))
        assert not result.implied
        assert check_model(meeting, result.countermodel) == []
        assert not statement_holds(
            result.countermodel, IsaStatement("Talk", "Speaker")
        )
