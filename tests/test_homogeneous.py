"""Unit tests for the homogeneous-cone decision routines."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.solver.homogeneous import (
    find_positive_solution,
    integerize,
    maximal_support,
)
from repro.solver.linear import LinearSystem, term


class TestFindPositiveSolution:
    def test_figure1_style_unsatisfiable_cone(self):
        # 2c <= r, c >= r, c > 0 has only the zero solution: the core of
        # the paper's Figure 1.
        c, r = term("c"), term("r")
        system = LinearSystem([2 * c <= r, c >= r, c > 0])
        assert not find_positive_solution(system).feasible

    def test_feasible_cone_returns_integral_witness(self):
        c, r = term("c"), term("r")
        system = LinearSystem([c <= r, 2 * c >= r, c > 0])
        witness = find_positive_solution(system)
        assert witness.feasible
        assert witness.integral["c"] >= 1
        assert system.is_satisfied_by(
            {k: Fraction(v) for k, v in witness.integral.items()}
        )

    def test_strict_less_than(self):
        x, y = term("x"), term("y")
        system = LinearSystem([x - y < 0, y <= 2 * x, x > 0])
        witness = find_positive_solution(system)
        assert witness.feasible
        assert witness.rational["x"] < witness.rational["y"]

    def test_rejects_inhomogeneous(self):
        with pytest.raises(SolverError):
            find_positive_solution(LinearSystem([term("x") >= 1]))

    def test_no_strict_constraints_zero_is_fine(self):
        system = LinearSystem([term("x") <= term("y")])
        witness = find_positive_solution(system)
        assert witness.feasible


class TestIntegerize:
    def test_already_integral(self):
        assert integerize({"a": Fraction(2)}) == {"a": 2}

    def test_scales_by_lcm_of_denominators(self):
        solution = {"a": Fraction(1, 2), "b": Fraction(1, 3)}
        assert integerize(solution) == {"a": 3, "b": 2}

    def test_zero_stays_zero(self):
        assert integerize({"a": Fraction(0), "b": Fraction(1, 4)}) == {
            "a": 0,
            "b": 1,
        }


class TestMaximalSupport:
    def test_full_support(self):
        c, r = term("c"), term("r")
        system = LinearSystem([c <= r, 2 * c >= r])
        support, solution = maximal_support(system)
        assert support == {"c", "r"}
        assert all(solution[name] > 0 for name in support)

    def test_empty_support(self):
        c, r = term("c"), term("r")
        system = LinearSystem([2 * c <= r, c >= r])
        support, solution = maximal_support(system)
        assert support == frozenset()
        assert all(value == 0 for value in solution.values())

    def test_partial_support(self):
        # y is forced to zero, x is free to be positive.
        x, y = term("x"), term("y")
        system = LinearSystem([y <= 0, x >= 0])
        support, solution = maximal_support(system)
        assert support == {"x"}
        assert solution["y"] == 0

    def test_candidate_restriction(self):
        x, y = term("x"), term("y")
        system = LinearSystem([x >= 0, y >= 0])
        support, _solution = maximal_support(system, candidates=["x"])
        assert "x" in support

    def test_support_is_exact_support_of_witness(self):
        x, y, z = term("x"), term("y"), term("z")
        system = LinearSystem([z.equals(0), x <= y])
        support, solution = maximal_support(system)
        assert support == {name for name, value in solution.items() if value > 0}
        assert support == {"x", "y"}

    def test_rejects_strict_systems(self):
        with pytest.raises(SolverError):
            maximal_support(LinearSystem([term("x") > 0]))

    def test_rejects_inhomogeneous(self):
        with pytest.raises(SolverError):
            maximal_support(LinearSystem([term("x") <= 5]))

    def test_chained_dependencies(self):
        # a <= b <= c <= a/2 forces everything to 0.
        a, b, c = term("a"), term("b"), term("c")
        system = LinearSystem([a <= b, b <= c, 2 * c <= a])
        support, _ = maximal_support(system)
        assert support == frozenset()
