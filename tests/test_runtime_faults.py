"""Fault injection and the fixpoint → Fourier–Motzkin → naive chain."""

from __future__ import annotations

import pytest

from repro.cr.satisfiability import is_class_satisfiable, satisfiable_classes
from repro.errors import BudgetExceededError, SolverError
from repro.paper import figure1_schema, meeting_schema, refined_meeting_schema
from repro.runtime.fallback import FallbackPolicy
from repro.runtime.faults import (
    DISK_WRITE_POINTS,
    FaultPlan,
    InjectedSolverFault,
    SimulatedCrash,
    inject_faults,
    inject_solver_faults,
)
from repro.solver import fourier_motzkin, simplex

# Fail every Fourier–Motzkin call a test could plausibly make; combined
# with a simplex fault this forces the chain all the way to the naive
# engine.
_ALL_FM = range(1, 1000)


class TestHarness:
    def test_nth_call_fails_deterministically(self):
        schema = meeting_schema()
        with inject_solver_faults(simplex_failures={2}) as plan:
            with pytest.raises(InjectedSolverFault):
                is_class_satisfiable(schema, "Speaker", fallback=None)
        assert plan.injected == [("simplex", 2)]
        assert plan.calls["simplex"] == 2
        assert plan.calls["fourier-motzkin"] == 0

    def test_unscripted_runs_are_untouched_but_counted(self):
        with inject_solver_faults() as plan:
            result = is_class_satisfiable(meeting_schema(), "Speaker")
        assert result.satisfiable
        assert plan.calls["simplex"] > 0
        assert plan.injected == []

    def test_hooks_restored_on_exit(self):
        assert simplex._FAULT_HOOK is None
        assert fourier_motzkin._FAULT_HOOK is None
        with inject_solver_faults(simplex_failures={1}):
            assert simplex._FAULT_HOOK is not None
        assert simplex._FAULT_HOOK is None
        assert fourier_motzkin._FAULT_HOOK is None

    def test_injections_nest(self):
        with inject_solver_faults(simplex_failures={1}) as outer:
            with inject_solver_faults() as inner:
                result = is_class_satisfiable(meeting_schema(), "Speaker")
        assert result.satisfiable
        assert inner.calls["simplex"] > 0
        assert outer.calls["simplex"] == 0  # shadowed by the inner plan

    def test_error_factory_controls_the_exception(self):
        class CustomFault(SolverError):
            pass

        with inject_solver_faults(
            simplex_failures={1},
            error_factory=lambda backend, index: CustomFault(
                f"{backend}#{index}"
            ),
        ):
            with pytest.raises(CustomFault):
                is_class_satisfiable(
                    meeting_schema(), "Speaker", fallback=None
                )

    def test_plan_records_multiple_injections(self):
        plan = FaultPlan(simplex_failures=frozenset({1, 3}))
        with pytest.raises(InjectedSolverFault):
            plan.on_call("simplex")  # call 1: scripted to fail
        plan.on_call("simplex")  # call 2: passes
        with pytest.raises(InjectedSolverFault):
            plan.on_call("simplex")  # call 3: scripted to fail
        assert plan.injected == [("simplex", 1), ("simplex", 3)]


class TestFallbackChain:
    def test_simplex_fault_retries_on_fourier_motzkin(self):
        schema = meeting_schema()
        baseline = is_class_satisfiable(schema, "Speaker")
        with inject_solver_faults(simplex_failures={1}) as plan:
            degraded = is_class_satisfiable(schema, "Speaker")
        assert degraded.satisfiable == baseline.satisfiable
        assert plan.injected == [("simplex", 1)]
        assert plan.calls["fourier-motzkin"] >= 1

    def test_chain_reaches_naive_engine(self):
        schema = meeting_schema()
        baseline = is_class_satisfiable(schema, "Speaker")
        with inject_solver_faults(
            simplex_failures={1}, fm_failures=_ALL_FM
        ) as plan:
            degraded = is_class_satisfiable(schema, "Speaker")
        assert degraded.satisfiable == baseline.satisfiable
        # The FM retry itself faulted, proving the naive engine (which
        # solves fresh LPs on later simplex calls) produced the verdict.
        assert ("fourier-motzkin", 1) in plan.injected
        assert plan.calls["simplex"] > 1

    def test_fallback_none_disables_the_chain(self):
        with inject_solver_faults(simplex_failures={1}):
            with pytest.raises(InjectedSolverFault):
                is_class_satisfiable(
                    meeting_schema(), "Speaker", fallback=None
                )

    def test_policy_can_disable_naive_stage_only(self):
        policy = FallbackPolicy(use_naive=False)
        with inject_solver_faults(simplex_failures={1}, fm_failures=_ALL_FM):
            with pytest.raises(SolverError):
                is_class_satisfiable(
                    meeting_schema(), "Speaker", fallback=policy
                )

    def test_naive_fallback_respects_naive_limit(self):
        with inject_solver_faults(simplex_failures={1}, fm_failures=_ALL_FM):
            with pytest.raises(SolverError):
                is_class_satisfiable(
                    meeting_schema(), "Speaker", naive_limit=1
                )

    def test_budget_exhaustion_is_never_absorbed_by_the_chain(self):
        # A backend "fault" that is actually budget exhaustion must
        # propagate, not trigger a retry that would overspend.
        with inject_solver_faults(
            simplex_failures={1},
            error_factory=lambda backend, index: BudgetExceededError(
                f"simulated exhaustion at {backend}#{index}"
            ),
        ) as plan:
            with pytest.raises(BudgetExceededError):
                is_class_satisfiable(meeting_schema(), "Speaker")
        assert plan.calls["fourier-motzkin"] == 0


class TestUnifiedRegistry:
    """Solver and disk faults script onto ONE plan with ONE history."""

    def test_solver_and_disk_faults_compose_in_one_plan(self, tmp_path):
        from repro.session import ReasoningSession, SessionCache
        from repro.store import ArtifactStore

        # Figure 1: small enough that the faulted LP retries cleanly on
        # Fourier–Motzkin (the chain's cap would fire on the larger
        # schemas — the boundary the parity tests below document).
        schema = figure1_schema()
        store = ArtifactStore(tmp_path, stale_lock_after=0.0)
        with inject_faults(
            simplex_failures={1},
            disk_failures={"store:write:pre-rename": {1}},
        ) as plan:
            session = ReasoningSession(
                schema, cache=SessionCache(store=store)
            )
            # The solver fault degrades to the FM retry inside the
            # fixpoint; the disk fault then kills the write-through.
            with pytest.raises(SimulatedCrash):
                session.satisfiable_classes()
        assert plan.injected[0] == ("simplex", 1)
        assert plan.injected[-1] == ("store:write:pre-rename", 1)
        assert plan.calls["fourier-motzkin"] >= 1
        # The crash left no entry behind — absent, not torn.
        assert ArtifactStore(tmp_path, stale_lock_after=0.0).get(
            session.fingerprint
        ) is None

    def test_disk_counters_are_per_point_and_one_based(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        with inject_faults(
            disk_failures={"store:write:pre-fsync": {2}}
        ) as plan:
            assert store.put("a" * 64, {"v": 1})  # call #1 untouched
            with pytest.raises(SimulatedCrash):
                store.put("b" * 64, {"v": 2})  # call #2 crashes
        assert plan.injected == [("store:write:pre-fsync", 2)]
        for point in DISK_WRITE_POINTS:
            assert plan.calls[point] >= 1

    def test_disk_points_are_silent_without_a_plan(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        assert store.put("a" * 64, {"v": 1})
        assert store.get("a" * 64) == {"v": 1}


class TestChainParityOnPaperSchemas:
    """Acceptance: the degraded chain agrees with the unfaulted run."""

    @pytest.fixture(
        params=[figure1_schema, meeting_schema, refined_meeting_schema],
        ids=["figure1", "meeting", "refined-meeting"],
    )
    def schema(self, request):
        return request.param()

    def test_fm_retry_parity(self, schema):
        baseline = satisfiable_classes(schema)
        with inject_solver_faults(simplex_failures={1}) as plan:
            degraded = satisfiable_classes(schema)
        assert degraded == baseline
        assert plan.injected == [("simplex", 1)]

    def test_full_chain_parity(self, schema):
        baseline = satisfiable_classes(schema)
        with inject_solver_faults(
            simplex_failures={1}, fm_failures=_ALL_FM
        ) as plan:
            degraded = satisfiable_classes(schema)
        assert degraded == baseline
        assert ("simplex", 1) in plan.injected
        assert ("fourier-motzkin", 1) in plan.injected

    def test_intermittent_faults_parity_on_small_schema(self):
        # Faults scattered through the run, not just at the first call.
        # Only on Figure 1: its systems are small enough that *every*
        # faulted LP can be retried on Fourier–Motzkin (on the larger
        # schemas a mid-fixpoint FM retry exceeds the constraint cap,
        # which is the documented boundary of the chain).
        baseline = satisfiable_classes(figure1_schema())
        with inject_solver_faults(simplex_failures={1, 2, 5}):
            degraded = satisfiable_classes(figure1_schema())
        assert degraded == baseline
