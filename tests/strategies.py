"""Hypothesis strategies for random CR-schemas and interpretations.

The property tests lean on two generators:

* :func:`schemas` — small random CR-schemas (random ISA DAG edges,
  random binary/ternary relationships, random small cardinality
  declarations including refinements), sized so that both the fixpoint
  and the naive Theorem-3.4 engine can run;
* :func:`interpretations_for` — random finite interpretations of a
  given schema, used to exercise the model checker and the Lemma-3.2
  equivalence.
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.interpretation import Interpretation
from repro.cr.schema import CRSchema

CLASS_NAMES = ["A", "B", "C", "D"]
MAX_RELATIONSHIPS = 2


def property_max_examples(default: int = 200) -> int:
    """The example budget for the oracle and metamorphic suites.

    Local runs use the ISSUE-2 floor of 200 examples; CI sets
    ``REPRO_PROPERTY_MAX_EXAMPLES`` to a smaller value for a faster
    deterministic pass (see the ``ci`` profile in ``conftest.py``).
    """
    return int(os.environ.get("REPRO_PROPERTY_MAX_EXAMPLES", default))


@st.composite
def schemas(
    draw,
    max_classes: int = 4,
    max_relationships: int = MAX_RELATIONSHIPS,
    allow_ternary: bool = False,
    allow_extensions: bool = False,
    allow_isa: bool = True,
    allow_inversions: bool = False,
) -> CRSchema:
    """A random small CR-schema.

    ``allow_inversions=True`` lets a declared cardinality have
    ``minc > maxc`` — legal per the paper (it forces the class empty)
    and exactly what the static analyzer's ``card-inversion`` check
    targets; off by default because most suites want schemas whose
    unsatisfiability, if any, is *interesting*.
    """
    num_classes = draw(st.integers(min_value=2, max_value=max_classes))
    classes = CLASS_NAMES[:num_classes]
    builder = SchemaBuilder("Random")
    for cls in classes:
        builder.cls(cls)

    # A random ISA DAG: edges only from later to earlier classes, so no
    # cycles (cycles are legal but make shrunken failures harder to read).
    # ``allow_isa=False`` yields ISA-free schemas, the fragment the
    # Section-3 baseline handles without any expansion.
    if allow_isa:
        for i, sub in enumerate(classes):
            for sup in classes[:i]:
                if draw(st.booleans()):
                    builder.isa(sub, sup)

    num_relationships = draw(
        st.integers(min_value=1, max_value=max_relationships)
    )
    role_counter = 0
    relationship_signatures: list[tuple[str, list[str]]] = []
    for rel_index in range(num_relationships):
        arity = (
            draw(st.integers(min_value=2, max_value=3)) if allow_ternary else 2
        )
        roles = {}
        role_names = []
        for _ in range(arity):
            role_counter += 1
            role = f"U{role_counter}"
            roles[role] = draw(st.sampled_from(classes))
            role_names.append(role)
        name = f"R{rel_index + 1}"
        builder.relationship(name, **roles)
        relationship_signatures.append((name, role_names))

    schema_so_far = builder.build()

    # Random cardinality declarations, including refinements: any class
    # that is a subclass of the role's primary class may carry one.
    for name, role_names in relationship_signatures:
        rel = schema_so_far.relationship(name)
        for role in role_names:
            primary = rel.primary_class(role)
            candidates = [
                cls
                for cls in classes
                if schema_so_far.is_subclass(cls, primary)
            ]
            for cls in candidates:
                if not draw(st.booleans()):
                    continue
                minimum = draw(st.integers(min_value=0, max_value=2))
                max_floor = 0 if allow_inversions else minimum
                maximum = draw(
                    st.one_of(
                        st.none(), st.integers(min_value=max_floor, max_value=3)
                    )
                )
                builder.card(cls, name, role, minimum, maximum)

    if allow_extensions:
        if num_classes >= 2 and draw(st.booleans()):
            pair = draw(
                st.lists(
                    st.sampled_from(classes), min_size=2, max_size=2, unique=True
                )
            )
            builder.disjoint(*pair)
        if num_classes >= 2 and draw(st.booleans()):
            covered = draw(st.sampled_from(classes))
            coverers = draw(
                st.lists(
                    st.sampled_from(classes), min_size=1, max_size=2, unique=True
                )
            )
            builder.cover(covered, *coverers)

    return builder.build()


@st.composite
def implication_queries_for(draw, schema: CRSchema):
    """A random implication query over ``schema`` — any of the four
    kinds :func:`repro.cr.implication.implies` decides.

    Cardinality queries are only generated on legal ``(cls, rel,
    role)`` triples, i.e. where ``cls`` is a subclass of the role's
    primary class (Section 4's well-formedness condition).
    """
    classes = schema.classes
    kinds = ["isa"]
    if len(classes) >= 2:
        kinds.append("disjoint")
    card_slots = [
        (cls, rel.name, role)
        for rel in schema.relationships
        for role, primary in rel.signature
        for cls in classes
        if schema.is_subclass(cls, primary)
    ]
    if card_slots:
        kinds.extend(["minc", "maxc"])
    kind = draw(st.sampled_from(kinds))
    if kind == "isa":
        return IsaStatement(
            draw(st.sampled_from(classes)), draw(st.sampled_from(classes))
        )
    if kind == "disjoint":
        pair = draw(
            st.lists(
                st.sampled_from(classes), min_size=2, max_size=2, unique=True
            )
        )
        return DisjointnessStatement(pair)
    cls, rel, role = draw(st.sampled_from(card_slots))
    if kind == "minc":
        value = draw(st.integers(min_value=0, max_value=3))
        return MinCardinalityStatement(cls, rel, role, value)
    value = draw(st.integers(min_value=1, max_value=3))
    return MaxCardinalityStatement(cls, rel, role, value)


@st.composite
def query_mixes(
    draw, schema: CRSchema, min_size: int = 1, max_size: int = 5
) -> list:
    """A mixed batch of ``(kind, payload)`` query pairs over ``schema``.

    ``("sat", class_name)`` and ``("implies", statement)`` in random
    interleaving — the exact shape :func:`repro.cli.parse_batch_query`
    produces from a batch file, which makes one generator serve every
    suite that drives batches: the parallel parity properties, the
    session metamorphic tests, and the serve differential harness
    (which renders the pairs back to batch-line syntax).
    """
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    queries = []
    for _ in range(size):
        if draw(st.booleans()):
            queries.append(("sat", draw(st.sampled_from(schema.classes))))
        else:
            queries.append(("implies", draw(implication_queries_for(schema))))
    return queries


def query_lines(queries: list) -> list[str]:
    """Render ``(kind, payload)`` pairs back to batch-file line syntax
    (``sat <Class>`` / ``<statement>.pretty()``) — the inverse of
    :func:`repro.cli.parse_batch_query`, used to feed the same random
    mix to the CLI and the serve daemon."""
    return [
        f"sat {payload}" if kind == "sat" else payload.pretty()
        for kind, payload in queries
    ]


@st.composite
def interpretations_for(draw, schema: CRSchema, max_domain: int = 4):
    """A random finite interpretation of ``schema``.

    Typing condition (B) is enforced by construction (tuples draw their
    components from the primary classes' extensions) so the generated
    interpretations are well-formed, while conditions (A) and (C) are
    left to chance — the checker tests need both outcomes.
    """
    domain = [f"d{i}" for i in range(draw(st.integers(1, max_domain)))]
    class_ext = {
        cls: frozenset(
            draw(st.lists(st.sampled_from(domain), max_size=len(domain), unique=True))
        )
        for cls in schema.classes
    }
    rel_ext = {}
    for rel in schema.relationships:
        pools = [sorted(class_ext[cls]) for _, cls in rel.signature]
        if any(not pool for pool in pools):
            rel_ext[rel.name] = []
            continue
        num_tuples = draw(st.integers(0, 3))
        tuples = []
        for _ in range(num_tuples):
            tuples.append(
                {
                    role: draw(st.sampled_from(pool))
                    for (role, _), pool in zip(rel.signature, pools)
                }
            )
        rel_ext[rel.name] = tuples
    return Interpretation.build(class_ext, rel_ext, extra_domain=domain)
