"""Hypothesis strategies for random CR-schemas and interpretations.

The property tests lean on two generators:

* :func:`schemas` — small random CR-schemas (random ISA DAG edges,
  random binary/ternary relationships, random small cardinality
  declarations including refinements), sized so that both the fixpoint
  and the naive Theorem-3.4 engine can run;
* :func:`interpretations_for` — random finite interpretations of a
  given schema, used to exercise the model checker and the Lemma-3.2
  equivalence.
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.interpretation import Interpretation
from repro.cr.schema import CRSchema, Relationship

CLASS_NAMES = ["A", "B", "C", "D"]
MAX_RELATIONSHIPS = 2


def property_max_examples(default: int = 200) -> int:
    """The example budget for the oracle and metamorphic suites.

    Local runs use the ISSUE-2 floor of 200 examples; CI sets
    ``REPRO_PROPERTY_MAX_EXAMPLES`` to a smaller value for a faster
    deterministic pass (see the ``ci`` profile in ``conftest.py``).
    """
    return int(os.environ.get("REPRO_PROPERTY_MAX_EXAMPLES", default))


@st.composite
def schemas(
    draw,
    max_classes: int = 4,
    max_relationships: int = MAX_RELATIONSHIPS,
    allow_ternary: bool = False,
    allow_extensions: bool = False,
    allow_isa: bool = True,
    allow_inversions: bool = False,
) -> CRSchema:
    """A random small CR-schema.

    ``allow_inversions=True`` lets a declared cardinality have
    ``minc > maxc`` — legal per the paper (it forces the class empty)
    and exactly what the static analyzer's ``card-inversion`` check
    targets; off by default because most suites want schemas whose
    unsatisfiability, if any, is *interesting*.
    """
    num_classes = draw(st.integers(min_value=2, max_value=max_classes))
    classes = CLASS_NAMES[:num_classes]
    builder = SchemaBuilder("Random")
    for cls in classes:
        builder.cls(cls)

    # A random ISA DAG: edges only from later to earlier classes, so no
    # cycles (cycles are legal but make shrunken failures harder to read).
    # ``allow_isa=False`` yields ISA-free schemas, the fragment the
    # Section-3 baseline handles without any expansion.
    if allow_isa:
        for i, sub in enumerate(classes):
            for sup in classes[:i]:
                if draw(st.booleans()):
                    builder.isa(sub, sup)

    num_relationships = draw(
        st.integers(min_value=1, max_value=max_relationships)
    )
    role_counter = 0
    relationship_signatures: list[tuple[str, list[str]]] = []
    for rel_index in range(num_relationships):
        arity = (
            draw(st.integers(min_value=2, max_value=3)) if allow_ternary else 2
        )
        roles = {}
        role_names = []
        for _ in range(arity):
            role_counter += 1
            role = f"U{role_counter}"
            roles[role] = draw(st.sampled_from(classes))
            role_names.append(role)
        name = f"R{rel_index + 1}"
        builder.relationship(name, **roles)
        relationship_signatures.append((name, role_names))

    schema_so_far = builder.build()

    # Random cardinality declarations, including refinements: any class
    # that is a subclass of the role's primary class may carry one.
    for name, role_names in relationship_signatures:
        rel = schema_so_far.relationship(name)
        for role in role_names:
            primary = rel.primary_class(role)
            candidates = [
                cls
                for cls in classes
                if schema_so_far.is_subclass(cls, primary)
            ]
            for cls in candidates:
                if not draw(st.booleans()):
                    continue
                minimum = draw(st.integers(min_value=0, max_value=2))
                max_floor = 0 if allow_inversions else minimum
                maximum = draw(
                    st.one_of(
                        st.none(), st.integers(min_value=max_floor, max_value=3)
                    )
                )
                builder.card(cls, name, role, minimum, maximum)

    if allow_extensions:
        if num_classes >= 2 and draw(st.booleans()):
            pair = draw(
                st.lists(
                    st.sampled_from(classes), min_size=2, max_size=2, unique=True
                )
            )
            builder.disjoint(*pair)
        if num_classes >= 2 and draw(st.booleans()):
            covered = draw(st.sampled_from(classes))
            coverers = draw(
                st.lists(
                    st.sampled_from(classes), min_size=1, max_size=2, unique=True
                )
            )
            builder.cover(covered, *coverers)

    return builder.build()


@st.composite
def symmetric_schemas(
    draw, min_siblings: int = 2, max_siblings: int = 3
) -> tuple[CRSchema, int]:
    """A CR-schema with ``k`` interchangeable sibling classes, plus ``k``.

    A root class ``T`` carries a self-relationship ``R(u, v)`` whose
    drawn cardinality profile decides whether the core is satisfiable
    (``(2,2)/(1,1)`` forces ``2|T| = |R| = |T|``, i.e. ``T`` empty);
    each sibling ``Ai`` hangs off the root through its own relationship
    ``Ri(xi: Ai, yi: T)`` — roles are schema-global (Definition 2.1),
    hence the per-relationship names — and every sibling gets the *same*
    drawn bounds, so swapping two siblings is a schema automorphism.
    The pruned-search suites use this to guarantee non-trivial column
    orbits while the naive oracle stays affordable: three siblings are
    always declared pairwise disjoint, which caps the consistent
    expansion at 7 compound classes (``2^7`` naive zero-sets).
    """
    siblings = draw(st.integers(min_value=min_siblings, max_value=max_siblings))
    builder = SchemaBuilder("Symmetric")
    builder.cls("T")
    names = [f"A{i}" for i in range(1, siblings + 1)]
    for name in names:
        builder.cls(name)

    builder.relationship("R", u="T", v="T")
    core_u, core_v = draw(
        st.sampled_from(
            [((2, 2), (1, 1)), ((1, 2), (1, 1)), ((1, 2), (0, 2))]
        )
    )
    builder.card("T", "R", "u", *core_u)
    builder.card("T", "R", "v", *core_v)

    sibling_min = draw(st.integers(min_value=0, max_value=2))
    sibling_max = draw(
        st.one_of(st.none(), st.integers(min_value=max(1, sibling_min), max_value=3))
    )
    root_side = draw(
        st.one_of(st.none(), st.tuples(st.just(0), st.integers(1, 3)))
    )
    for i, name in enumerate(names, start=1):
        builder.relationship(f"R{i}", **{f"x{i}": name, f"y{i}": "T"})
        builder.card(name, f"R{i}", f"x{i}", sibling_min, sibling_max)
        if root_side is not None:
            builder.card("T", f"R{i}", f"y{i}", *root_side)

    if siblings > 2 or draw(st.booleans()):
        builder.disjoint(*names)

    return builder.build(), siblings


def _component_count(schema: CRSchema) -> int:
    """An independent union-find oracle for the constraint graph.

    Deliberately *not* built on :mod:`repro.components` — the
    decomposition property suite compares the library against this
    little re-derivation, so the two cannot share a bug.
    """
    parent = {cls: cls for cls in schema.classes}

    def find(cls: str) -> str:
        while parent[cls] != cls:
            parent[cls] = parent[parent[cls]]
            cls = parent[cls]
        return cls

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    for sub, sup in schema.isa_statements:
        union(sub, sup)
    for rel in schema.relationships:
        signature = [cls for _role, cls in rel.signature]
        for cls in signature[1:]:
            union(signature[0], cls)
    for cls, rel_name, _role in schema.declared_cards:
        union(cls, schema.relationship(rel_name).signature[0][1])
    for group in schema.disjointness_groups:
        members = sorted(group)
        for cls in members[1:]:
            union(members[0], cls)
    for covered, coverers in schema.coverings:
        for cls in coverers:
            union(covered, cls)
    return len({find(cls) for cls in schema.classes})


@st.composite
def multi_component_schemas(
    draw, min_islands: int = 2, max_islands: int = 3
) -> tuple[CRSchema, int]:
    """A schema assembled from independent namespaced islands, plus the
    number of constraint-graph components it *actually* has.

    Each island is its own :func:`schemas` draw whose classes,
    relationships, and roles get an ``I{i}`` prefix before the union,
    so no constraint crosses islands.  A drawn island can itself be
    disconnected (a class mentioned by no constraint is a singleton
    component), so the expected count comes from the independent
    :func:`_component_count` oracle, not from the island count.

    Sizes are kept small — decomposition parity suites run every query
    twice (decomposed and monolithic), and the monolithic side pays the
    whole product expansion.
    """
    num_islands = draw(
        st.integers(min_value=min_islands, max_value=max_islands)
    )
    island_classes = 3 if num_islands <= 2 else 2
    classes: list[str] = []
    relationships: list[Relationship] = []
    isa: list[tuple[str, str]] = []
    cards: dict = {}
    disjointness: list[frozenset[str]] = []
    coverings: list[tuple[str, frozenset[str]]] = []
    for i in range(num_islands):
        island = draw(
            schemas(
                max_classes=island_classes,
                max_relationships=1,
                allow_extensions=True,
            )
        )
        prefix = f"I{i}"
        cls_map = {cls: f"{prefix}{cls}" for cls in island.classes}
        classes.extend(cls_map[cls] for cls in island.classes)
        relationships.extend(
            Relationship(
                f"{prefix}{rel.name}",
                tuple(
                    (f"{prefix}{role}", cls_map[cls])
                    for role, cls in rel.signature
                ),
            )
            for rel in island.relationships
        )
        isa.extend(
            (cls_map[sub], cls_map[sup])
            for sub, sup in island.isa_statements
        )
        cards.update(
            {
                (cls_map[cls], f"{prefix}{rel}", f"{prefix}{role}"): card
                for (cls, rel, role), card in island.declared_cards.items()
            }
        )
        disjointness.extend(
            frozenset(cls_map[cls] for cls in group)
            for group in island.disjointness_groups
        )
        coverings.extend(
            (cls_map[covered], frozenset(cls_map[c] for c in coverers))
            for covered, coverers in island.coverings
        )
    schema = CRSchema(
        classes=classes,
        relationships=relationships,
        isa=isa,
        cards=cards,
        disjointness=disjointness,
        coverings=coverings,
        name="Islands",
    )
    return schema, _component_count(schema)


@st.composite
def implication_queries_for(draw, schema: CRSchema):
    """A random implication query over ``schema`` — any of the four
    kinds :func:`repro.cr.implication.implies` decides.

    Cardinality queries are only generated on legal ``(cls, rel,
    role)`` triples, i.e. where ``cls`` is a subclass of the role's
    primary class (Section 4's well-formedness condition).
    """
    classes = schema.classes
    kinds = ["isa"]
    if len(classes) >= 2:
        kinds.append("disjoint")
    card_slots = [
        (cls, rel.name, role)
        for rel in schema.relationships
        for role, primary in rel.signature
        for cls in classes
        if schema.is_subclass(cls, primary)
    ]
    if card_slots:
        kinds.extend(["minc", "maxc"])
    kind = draw(st.sampled_from(kinds))
    if kind == "isa":
        return IsaStatement(
            draw(st.sampled_from(classes)), draw(st.sampled_from(classes))
        )
    if kind == "disjoint":
        pair = draw(
            st.lists(
                st.sampled_from(classes), min_size=2, max_size=2, unique=True
            )
        )
        return DisjointnessStatement(pair)
    cls, rel, role = draw(st.sampled_from(card_slots))
    if kind == "minc":
        value = draw(st.integers(min_value=0, max_value=3))
        return MinCardinalityStatement(cls, rel, role, value)
    value = draw(st.integers(min_value=1, max_value=3))
    return MaxCardinalityStatement(cls, rel, role, value)


@st.composite
def query_mixes(
    draw, schema: CRSchema, min_size: int = 1, max_size: int = 5
) -> list:
    """A mixed batch of ``(kind, payload)`` query pairs over ``schema``.

    ``("sat", class_name)`` and ``("implies", statement)`` in random
    interleaving — the exact shape :func:`repro.cli.parse_batch_query`
    produces from a batch file, which makes one generator serve every
    suite that drives batches: the parallel parity properties, the
    session metamorphic tests, and the serve differential harness
    (which renders the pairs back to batch-line syntax).
    """
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    queries = []
    for _ in range(size):
        if draw(st.booleans()):
            queries.append(("sat", draw(st.sampled_from(schema.classes))))
        else:
            queries.append(("implies", draw(implication_queries_for(schema))))
    return queries


def query_lines(queries: list) -> list[str]:
    """Render ``(kind, payload)`` pairs back to batch-file line syntax
    (``sat <Class>`` / ``<statement>.pretty()``) — the inverse of
    :func:`repro.cli.parse_batch_query`, used to feed the same random
    mix to the CLI and the serve daemon."""
    return [
        f"sat {payload}" if kind == "sat" else payload.pretty()
        for kind, payload in queries
    ]


@st.composite
def interpretations_for(draw, schema: CRSchema, max_domain: int = 4):
    """A random finite interpretation of ``schema``.

    Typing condition (B) is enforced by construction (tuples draw their
    components from the primary classes' extensions) so the generated
    interpretations are well-formed, while conditions (A) and (C) are
    left to chance — the checker tests need both outcomes.
    """
    domain = [f"d{i}" for i in range(draw(st.integers(1, max_domain)))]
    class_ext = {
        cls: frozenset(
            draw(st.lists(st.sampled_from(domain), max_size=len(domain), unique=True))
        )
        for cls in schema.classes
    }
    rel_ext = {}
    for rel in schema.relationships:
        pools = [sorted(class_ext[cls]) for _, cls in rel.signature]
        if any(not pool for pool in pools):
            rel_ext[rel.name] = []
            continue
        num_tuples = draw(st.integers(0, 3))
        tuples = []
        for _ in range(num_tuples):
            tuples.append(
                {
                    role: draw(st.sampled_from(pool))
                    for (role, _), pool in zip(rel.signature, pools)
                }
            )
        rel_ext[rel.name] = tuples
    return Interpretation.build(class_ext, rel_ext, extra_domain=domain)
