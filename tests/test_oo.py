"""Unit tests for the object-oriented adapter."""

from __future__ import annotations

import pytest

from repro.cr.implication import implies_isa, implies_min_cardinality
from repro.cr.satisfiability import satisfiable_classes
from repro.cr.schema import Card, UNBOUNDED
from repro.errors import DuplicateSymbolError, SchemaError, UnknownSymbolError
from repro.oo import OOModel, oo_to_cr


def library_model() -> OOModel:
    model = OOModel("Library")
    model.cls("Book")
    model.cls("Author")
    model.attribute(
        "Book", "writtenBy", "Author", minimum=1, maximum=None,
        inverse_minimum=0, inverse_maximum=None,
    )
    return model


class TestDeclarations:
    def test_duplicate_class_rejected(self):
        model = OOModel().cls("A")
        with pytest.raises(DuplicateSymbolError):
            model.cls("A")

    def test_duplicate_attribute_rejected(self):
        model = OOModel().cls("A")
        model.attribute("A", "x", "A")
        with pytest.raises(DuplicateSymbolError):
            model.attribute("A", "x", "A")

    def test_attribute_on_unknown_class_rejected(self):
        with pytest.raises(UnknownSymbolError):
            OOModel().attribute("Ghost", "x", "Ghost")

    def test_unknown_target_caught_by_validate(self):
        model = OOModel().cls("A")
        model.attribute("A", "x", "Ghost")
        with pytest.raises(UnknownSymbolError):
            model.validate()

    def test_override_must_target_subclass(self):
        model = OOModel().cls("A").cls("B")
        model.attribute("A", "x", "A")
        model.override("B", "A", "x", 0, 1)
        with pytest.raises(SchemaError, match="not a subclass"):
            model.validate()

    def test_override_on_unknown_attribute(self):
        model = OOModel().cls("A").cls("B", parents=["A"])
        model.override("B", "A", "ghost", 0, 1)
        with pytest.raises(UnknownSymbolError):
            model.validate()


class TestTranslation:
    def test_attribute_becomes_binary_relationship(self):
        schema = oo_to_cr(library_model())
        rel = schema.relationship("writtenBy_of_Book")
        assert rel.signature == (
            ("src_writtenBy_of_Book", "Book"),
            ("tgt_writtenBy_of_Book", "Author"),
        )
        assert schema.card(
            "Book", "writtenBy_of_Book", "src_writtenBy_of_Book"
        ) == Card(1, UNBOUNDED)

    def test_inverse_multiplicity_translates(self):
        model = OOModel().cls("A").cls("B")
        model.attribute(
            "A", "x", "B", minimum=1, maximum=1,
            inverse_minimum=1, inverse_maximum=2,
        )
        schema = oo_to_cr(model)
        assert schema.card("B", "x_of_A", "tgt_x_of_A") == Card(1, 2)

    def test_inheritance_becomes_isa(self):
        model = OOModel().cls("A").cls("B", parents=["A"])
        model.attribute("A", "x", "A")
        schema = oo_to_cr(model)
        assert schema.is_subclass("B", "A")

    def test_override_becomes_refinement(self):
        model = OOModel().cls("A").cls("B", parents=["A"])
        model.attribute("A", "x", "A", minimum=0, maximum=None)
        model.override("B", "A", "x", minimum=2, maximum=3)
        schema = oo_to_cr(model)
        assert schema.card("B", "x_of_A", "src_x_of_A") == Card(2, 3)


class TestReasoningThroughAdapter:
    def test_satisfiable_model(self):
        verdicts = satisfiable_classes(oo_to_cr(library_model()))
        assert verdicts == {"Book": True, "Author": True}

    def test_isa_cardinality_interaction_detected(self):
        # The Figure-1 pathology expressed as an OO model: every A object
        # stores exactly two x-values, all values are B objects, each B is
        # referenced at most once, and B specialises A.
        model = OOModel()
        model.cls("A")
        model.cls("B", parents=["A"])
        model.attribute(
            "A", "x", "B", minimum=2, maximum=2,
            inverse_minimum=0, inverse_maximum=1,
        )
        verdicts = satisfiable_classes(oo_to_cr(model))
        assert verdicts == {"A": False, "B": False}

    def test_implied_subtyping(self):
        # Finite-model subtyping through the adapter: with one A per B
        # slot forced both ways, A and B must coincide.
        model = OOModel()
        model.cls("A")
        model.cls("B", parents=["A"])
        model.attribute(
            "A", "x", "B", minimum=1, maximum=1,
            inverse_minimum=1, inverse_maximum=1,
        )
        schema = oo_to_cr(model)
        assert implies_isa(schema, "A", "B").implied

    def test_inherited_minimum_is_implied_for_subclass(self):
        model = OOModel().cls("A").cls("B", parents=["A"])
        model.attribute("A", "x", "A", minimum=1, maximum=None)
        schema = oo_to_cr(model)
        assert implies_min_cardinality(
            schema, "B", "x_of_A", "src_x_of_A", 1
        ).implied
