"""Unit tests for the integrity-enforcing database store."""

from __future__ import annotations

import pytest

from repro.cr.builder import SchemaBuilder
from repro.cr.checker import is_model
from repro.cr.construction import construct_model_for_result
from repro.cr.satisfiability import is_class_satisfiable
from repro.db import Database, IntegrityError
from repro.errors import InterpretationError, ReproError, UnknownSymbolError


@pytest.fixture
def schema():
    return (
        SchemaBuilder("Library")
        .classes("Book", "Author", "Novel")
        .isa("Novel", "Book")
        .relationship("WrittenBy", work="Book", writer="Author")
        .card("Book", "WrittenBy", "work", minc=1)
        .card("Author", "WrittenBy", "writer", minc=0, maxc=2)
        .build()
    )


class TestHappyPath:
    def test_empty_database_is_a_model(self, schema):
        database = Database(schema)
        assert is_model(schema, database.snapshot())

    def test_insert_consistent_state(self, schema):
        database = Database(schema)
        with database.transaction() as txn:
            txn.insert_object("moby", classes=["Book", "Novel"])
            txn.insert_object("melville", classes=["Author"])
            txn.insert_tuple(
                "WrittenBy", {"work": "moby", "writer": "melville"}
            )
        assert database.instances_of("Book") == {"moby"}
        assert len(database.tuples_of("WrittenBy")) == 1

    def test_chained_updates_within_one_transaction(self, schema):
        database = Database(schema)
        txn = database.transaction()
        txn.insert_object("b", classes=["Book"]).insert_object(
            "a", classes=["Author"]
        ).insert_tuple("WrittenBy", {"work": "b", "writer": "a"})
        txn.commit()
        assert "b" in database.domain

    def test_snapshot_is_immutable_copy(self, schema):
        database = Database(schema)
        before = database.snapshot()
        with database.transaction() as txn:
            txn.insert_object("b", classes=["Book"])
            txn.insert_object("a", classes=["Author"])
            txn.insert_tuple("WrittenBy", {"work": "b", "writer": "a"})
        assert not before.instances_of("Book")
        assert database.instances_of("Book") == {"b"}


class TestDeferredChecking:
    def test_intermediate_violations_are_fine(self, schema):
        database = Database(schema)
        txn = database.transaction()
        # A book without its author: violates minc *inside* the txn.
        txn.insert_object("b", classes=["Book"])
        assert txn.violations()  # dry run sees the violation
        txn.insert_object("a", classes=["Author"])
        txn.insert_tuple("WrittenBy", {"work": "b", "writer": "a"})
        txn.commit()  # healed by commit time

    def test_commit_rejects_isa_violation(self, schema):
        database = Database(schema)
        txn = database.transaction()
        txn.insert_object("n", classes=["Novel"])  # Novel but not Book
        with pytest.raises(IntegrityError) as excinfo:
            txn.commit()
        assert any(v.condition == "A" for v in excinfo.value.violations)
        # The store is untouched.
        assert not database.instances_of("Novel")

    def test_commit_rejects_cardinality_violation(self, schema):
        database = Database(schema)
        txn = database.transaction()
        txn.insert_object("a", classes=["Author"])
        for i in range(3):  # an author of 3 books: maxc is 2
            txn.insert_object(f"b{i}", classes=["Book"])
            txn.insert_tuple("WrittenBy", {"work": f"b{i}", "writer": "a"})
        with pytest.raises(IntegrityError) as excinfo:
            txn.commit()
        assert any(v.condition == "C" for v in excinfo.value.violations)

    def test_commit_rejects_typing_violation(self, schema):
        database = Database(schema)
        txn = database.transaction()
        txn.insert_object("ghost")
        txn.insert_object("b", classes=["Book"])
        txn.insert_tuple("WrittenBy", {"work": "b", "writer": "ghost"})
        with pytest.raises(IntegrityError) as excinfo:
            txn.commit()
        assert any(v.condition == "B" for v in excinfo.value.violations)

    def test_context_manager_discards_on_exception(self, schema):
        database = Database(schema)
        with pytest.raises(RuntimeError):
            with database.transaction() as txn:
                txn.insert_object("b", classes=["Book"])
                raise RuntimeError("user code failed")
        assert not database.instances_of("Book")

    def test_closed_transaction_rejects_updates(self, schema):
        database = Database(schema)
        txn = database.transaction()
        txn.abort()
        with pytest.raises(ReproError):
            txn.insert_object("x")


class TestStructuralErrors:
    def test_unknown_class_immediate(self, schema):
        txn = Database(schema).transaction()
        with pytest.raises(UnknownSymbolError):
            txn.add_to_class("x", "Ghost")

    def test_wrong_roles_immediate(self, schema):
        txn = Database(schema).transaction()
        with pytest.raises(InterpretationError):
            txn.insert_tuple("WrittenBy", {"work": "b"})
        with pytest.raises(InterpretationError):
            txn.insert_tuple(
                "WrittenBy", {"work": "b", "writer": "a", "extra": "c"}
            )

    def test_unknown_relationship_immediate(self, schema):
        txn = Database(schema).transaction()
        with pytest.raises(UnknownSymbolError):
            txn.insert_tuple("Ghost", {"x": 1})


class TestDeletion:
    def _loaded(self, schema):
        database = Database(schema)
        with database.transaction() as txn:
            txn.insert_object("b", classes=["Book"])
            txn.insert_object("a", classes=["Author"])
            txn.insert_tuple("WrittenBy", {"work": "b", "writer": "a"})
        return database

    def test_delete_tuple_can_break_minc(self, schema):
        database = self._loaded(schema)
        txn = database.transaction()
        txn.delete_tuple("WrittenBy", {"work": "b", "writer": "a"})
        with pytest.raises(IntegrityError):
            txn.commit()

    def test_delete_object_cascades(self, schema):
        database = self._loaded(schema)
        with database.transaction() as txn:
            txn.delete_object("b")  # removes the book AND its tuple
        assert not database.instances_of("Book")
        assert not database.tuples_of("WrittenBy")

    def test_remove_from_class(self, schema):
        database = self._loaded(schema)
        txn = database.transaction()
        txn.remove_from_class("b", "Book")
        # Tuple still references b as work: typing violation at commit.
        with pytest.raises(IntegrityError):
            txn.commit()


class TestReasonerIntegration:
    def test_constructed_models_load_cleanly(self, meeting):
        result = is_class_satisfiable(meeting, "Speaker")
        model = construct_model_for_result(result)
        database = Database.from_interpretation(meeting, model)
        assert database.domain == model.domain

    def test_non_models_are_rejected_at_load(self, schema):
        from repro.cr.interpretation import Interpretation

        broken = Interpretation.build({"Novel": ["n"]})  # not a Book
        with pytest.raises(IntegrityError):
            Database.from_interpretation(schema, broken)


class TestAbortAndViolationReporting:
    def test_explicit_abort_leaves_store_untouched(self, schema):
        database = Database(schema)
        with database.transaction() as txn:
            txn.insert_object("b", classes=["Book"])
            txn.insert_object("a", classes=["Author"])
            txn.insert_tuple("WrittenBy", {"work": "b", "writer": "a"})
        before = database.snapshot()
        txn = database.transaction()
        txn.insert_object("ghost", classes=["Book"])
        txn.delete_object("b")
        txn.abort()
        assert database.snapshot() == before
        assert "ghost" not in database.domain
        assert "b" in database.domain

    def test_abort_inside_with_block_suppresses_the_commit(self, schema):
        database = Database(schema)
        with database.transaction() as txn:
            txn.insert_object("ghost", classes=["Book"])
            txn.abort()  # clean exit must NOT commit after an abort
        assert "ghost" not in database.domain

    def test_integrity_error_lists_few_violations_in_full(self, schema):
        database = Database(schema)
        txn = database.transaction()
        for i in range(3):
            txn.insert_object(f"b{i}", classes=["Book"])  # minc=1 unmet
        with pytest.raises(IntegrityError) as excinfo:
            txn.commit()
        assert len(excinfo.value.violations) == 3
        assert "more)" not in str(excinfo.value)

    def test_integrity_error_truncates_at_five_violations(self, schema):
        database = Database(schema)
        txn = database.transaction()
        for i in range(8):
            txn.insert_object(f"b{i}", classes=["Book"])  # 8 minc violations
        with pytest.raises(IntegrityError) as excinfo:
            txn.commit()
        error = excinfo.value
        assert len(error.violations) == 8  # the full list is still carried
        message = str(error)
        assert message.startswith("commit rejected: ")
        assert message.endswith("... (3 more)")
        # Exactly five violations are spelled out before the ellipsis
        # (each cardinality violation renders with one "appears" clause).
        assert message.count("appears") == 5

    def test_failed_commit_leaves_store_untouched(self, schema):
        database = Database(schema)
        before = database.snapshot()
        txn = database.transaction()
        for i in range(8):
            txn.insert_object(f"b{i}", classes=["Book"])
        with pytest.raises(IntegrityError):
            txn.commit()
        assert database.snapshot() == before
