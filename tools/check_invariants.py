#!/usr/bin/env python
"""DEPRECATED compatibility shim over ``repro.lintkit``.

The repo-specific invariant lint that lived here — seven AST pattern
rules over the exact-arithmetic kernel, the parallel fabric, the
store, and the component layer — migrated onto the lintkit rule
registry (``src/repro/lintkit/``), which adds call-graph dataflow
rules, witness chains, and a baseline gate on top.  Prefer::

    PYTHONPATH=src python -m repro lint --repo

This shim keeps the historical entry points alive with byte-identical
diagnostics so existing callers (``tests/test_check_invariants.py``,
the CI lint job, editor hooks) keep working unchanged:

* :func:`check_source` — lint one source string,
* :func:`check_file` — lint one file,
* :func:`iter_checked_files` — the historical rule scopes,
* :func:`main` — the historical CLI (exit 0 clean / 1 violations).

``Violation`` keeps its ``(path, line, rule, message)`` shape and
``file:line: RULE message`` rendering.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.lintkit.compat import (  # noqa: E402
    Violation,
    check_source,
    iter_checked_files as _iter_checked_files,
    main as _main,
)
from repro.lintkit.compat import check_file as _check_file  # noqa: E402

__all__ = [
    "REPO_ROOT",
    "SRC",
    "Violation",
    "check_source",
    "check_file",
    "iter_checked_files",
    "main",
]


def check_file(path: Path, src_root: Path = SRC) -> list[Violation]:
    return _check_file(path, src_root)


def iter_checked_files(src_root: Path = SRC) -> list[Path]:
    """Every file any compat rule applies to, sorted for stable
    output."""
    return _iter_checked_files(src_root)


def main(argv: list[str] | None = None) -> int:
    return _main(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
