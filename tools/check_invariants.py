#!/usr/bin/env python
"""Repo-specific invariant lint for the exact-arithmetic kernel.

The solver kernel (``repro/solver/core.py`` and ``repro/linalg/``)
promises exact rational arithmetic and budget-governed termination, and
the kernel modules at large (``repro/solver/``, ``repro/linalg/``)
promise deterministic iteration.  ruff and mypy cannot express these
invariants, so this AST-based checker enforces them in CI:

R1  no ``float`` arithmetic in the exact kernel: float literals,
    ``float(...)`` conversions, and ``math.``-module arithmetic are
    banned in ``repro/solver/core.py`` and ``repro/linalg/``
    (``Fraction`` everywhere — one float poisons exactness silently).
R2  no un-budgeted ``while True:`` loop in the same scope: every
    unbounded loop must charge or check the ambient budget somewhere in
    its body, so a pathological input degrades to a clean
    ``BudgetExceededError`` instead of a hang.
R3  no ``popitem`` in any kernel module (``repro/solver/``,
    ``repro/linalg/``): the kernels guarantee run-to-run deterministic
    iteration, and ``popitem`` is the classic way an incidental dict
    ordering assumption sneaks in.
R4  spawn-only multiprocessing in ``repro/parallel/``: every
    ``get_context(...)`` / ``set_start_method(...)`` call must pass the
    literal ``"spawn"``.  ``fork`` would copy the parent's ambient
    budgets, contextvars, and lock state into workers — the exact
    aliasing the worker-initializer protocol exists to prevent.
R5  deadlined waits in ``repro/parallel/``: every pool wait —
    ``Future.result()``, ``concurrent.futures.wait()``,
    ``as_completed()``, ``pool.map()`` — must pass ``timeout=`` so a
    stuck worker degrades to a budget check instead of hanging the
    parent forever.
R6  atomic writes only in ``repro/store/``: the store's crash-safety
    contract ("absent or valid" after a kill at any instant) holds only
    if every byte reaches disk through the temp+fsync+rename helper in
    ``repro/store/atomic.py``.  Writable ``open(...)`` modes and
    ``Path.write_text`` / ``Path.write_bytes`` are banned everywhere
    else under ``repro/store/`` — a bare ``open(path, "w")`` truncates
    in place and a crash mid-write leaves a torn entry that *reads* as
    present.
R7  no whole-schema expansion in ``repro/components/``: the layer's
    entire value is that reasoning cost scales with the touched
    *island*, never the whole schema.  Calling ``Expansion(...)`` or
    ``build_system(...)`` there would reintroduce the exponential
    whole-schema path behind the incremental facade, so both are
    banned — components must delegate to the per-component sessions
    and cache, which expand only their own sub-schemas.

Failures print ``file:line: RULE message`` diagnostics and exit 1.
Run from the repository root: ``python tools/check_invariants.py``.

The module is import-safe for unit tests: :func:`check_source` lints a
source string, :func:`check_file` a path, :func:`main` the whole tree.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

EXACT_KERNEL = ("repro/solver/core.py", "repro/linalg/")
"""Scope of R1 (float ban) and R2 (budgeted-loop rule), repo-relative."""

KERNEL_MODULES = ("repro/solver/", "repro/linalg/")
"""Scope of R3 (popitem ban)."""

PARALLEL_MODULES = ("repro/parallel/",)
"""Scope of R4 (spawn-only start method) and R5 (deadlined waits)."""

STORE_MODULES = ("repro/store/",)
"""Scope of R6 (atomic writes only)."""

COMPONENT_MODULES = ("repro/components/",)
"""Scope of R7 (no whole-schema expansion)."""

_EXPANSION_CALLS = ("Expansion", "build_system")
"""Call names R7 bans inside the component layer — the two entry
points of the exponential whole-schema pipeline."""

STORE_WRITE_HELPER = "repro/store/atomic.py"
"""The one module allowed to open files for writing inside the store."""

_WRITE_MODE_CHARS = frozenset("wax+")
"""``open()`` mode characters that make a handle writable."""

_WRITE_METHODS = ("write_text", "write_bytes")
"""``Path`` convenience writers R6 bans alongside ``open``."""

_START_METHOD_CALLS = ("get_context", "set_start_method")

_WAIT_CALLS = ("result", "wait", "as_completed", "map")
"""Call names R5 treats as pool waits needing a ``timeout=``."""

# Identifiers that mark a loop as budget-governed when they appear
# anywhere in its body (`budget.charge_pivots()`, `budget.check()`,
# `current_budget()` re-reads, ...).
_BUDGET_MARKERS = ("budget", "charge")


@dataclass(frozen=True)
class Violation:
    """One invariant breach, formatted ``file:line: RULE message``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _in_scope(relative: str, scope: tuple[str, ...]) -> bool:
    normalized = relative.replace("\\", "/")
    return any(
        normalized == entry or normalized.startswith(entry)
        for entry in scope
    )


def _is_true_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _mentions_budget(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            continue
        lowered = name.lower()
        if any(marker in lowered for marker in _BUDGET_MARKERS):
            return True
    return False


def _check_floats(tree: ast.AST, path: str) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    "R1",
                    f"float literal {node.value!r} in the exact-arithmetic "
                    "kernel; use Fraction",
                )
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                violations.append(
                    Violation(
                        path,
                        node.lineno,
                        "R1",
                        "float() conversion in the exact-arithmetic kernel; "
                        "use Fraction",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "math"
            ):
                violations.append(
                    Violation(
                        path,
                        node.lineno,
                        "R1",
                        f"math.{func.attr}() in the exact-arithmetic kernel; "
                        "math operates on floats",
                    )
                )
    return violations


def _check_unbudgeted_loops(tree: ast.AST, path: str) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.While):
            continue
        if not _is_true_constant(node.test):
            continue
        if _mentions_budget(node):
            continue
        violations.append(
            Violation(
                path,
                node.lineno,
                "R2",
                "'while True:' without a budget charge/check in its body; "
                "unbounded kernel loops must be budget-governed",
            )
        )
    return violations


def _check_popitem(tree: ast.AST, path: str) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "popitem":
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    "R3",
                    "popitem in a kernel module; kernels promise "
                    "deterministic iteration — pop an explicit key instead",
                )
            )
    return violations


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _check_start_method(tree: ast.AST, path: str) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) not in _START_METHOD_CALLS:
            continue
        method: ast.expr | None = node.args[0] if node.args else None
        if method is None:
            for keyword in node.keywords:
                if keyword.arg == "method":
                    method = keyword.value
        if isinstance(method, ast.Constant) and method.value == "spawn":
            continue
        violations.append(
            Violation(
                path,
                node.lineno,
                "R4",
                "multiprocessing start method must be the literal 'spawn'; "
                "fork copies ambient budgets, contextvars, and locks into "
                "workers",
            )
        )
    return violations


def _check_undeadlined_waits(tree: ast.AST, path: str) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _WAIT_CALLS:
            continue
        if any(keyword.arg == "timeout" for keyword in node.keywords):
            continue
        violations.append(
            Violation(
                path,
                node.lineno,
                "R5",
                f"{name}() without timeout= in repro.parallel; every pool "
                "wait must carry a deadline so a stuck worker cannot hang "
                "the parent",
            )
        )
    return violations


def _open_mode(node: ast.Call) -> ast.expr | None:
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _check_nonatomic_writes(tree: ast.AST, path: str) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if mode is None:
                continue  # bare open(path) reads; reads are lock-free
            if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
                if not _WRITE_MODE_CHARS & set(mode.value):
                    continue
                detail = f"open(..., {mode.value!r})"
            else:
                detail = "open() with a computed mode"
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    "R6",
                    f"{detail} in the store; all writes must go through "
                    "the atomic temp+fsync+rename helper "
                    "(repro.store.atomic.atomic_write_bytes)",
                )
            )
        elif isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    "R6",
                    f".{func.attr}() in the store; all writes must go "
                    "through the atomic temp+fsync+rename helper "
                    "(repro.store.atomic.atomic_write_bytes)",
                )
            )
    return violations


def _check_whole_schema_expansion(
    tree: ast.AST, path: str
) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _EXPANSION_CALLS:
            continue
        violations.append(
            Violation(
                path,
                node.lineno,
                "R7",
                f"{name}() in the component layer; expansion must happen "
                "per component through the session cache, never on the "
                "whole schema",
            )
        )
    return violations


def check_source(source: str, relative_path: str) -> list[Violation]:
    """Lint one module's source against every rule whose scope covers
    ``relative_path`` (a path relative to ``src/``, e.g.
    ``repro/solver/core.py``)."""
    tree = ast.parse(source, filename=relative_path)
    violations: list[Violation] = []
    if _in_scope(relative_path, EXACT_KERNEL):
        violations.extend(_check_floats(tree, relative_path))
        violations.extend(_check_unbudgeted_loops(tree, relative_path))
    if _in_scope(relative_path, KERNEL_MODULES):
        violations.extend(_check_popitem(tree, relative_path))
    if _in_scope(relative_path, PARALLEL_MODULES):
        violations.extend(_check_start_method(tree, relative_path))
        violations.extend(_check_undeadlined_waits(tree, relative_path))
    if (
        _in_scope(relative_path, STORE_MODULES)
        and relative_path.replace("\\", "/") != STORE_WRITE_HELPER
    ):
        violations.extend(_check_nonatomic_writes(tree, relative_path))
    if _in_scope(relative_path, COMPONENT_MODULES):
        violations.extend(_check_whole_schema_expansion(tree, relative_path))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def check_file(path: Path, src_root: Path = SRC) -> list[Violation]:
    relative = path.resolve().relative_to(src_root.resolve()).as_posix()
    return check_source(path.read_text(), relative)


def iter_checked_files(src_root: Path = SRC) -> list[Path]:
    """Every file any rule applies to, sorted for stable output."""
    scoped: set[Path] = set()
    for entry in (
        EXACT_KERNEL
        + KERNEL_MODULES
        + PARALLEL_MODULES
        + STORE_MODULES
        + COMPONENT_MODULES
    ):
        target = src_root / entry
        if target.is_file():
            scoped.add(target)
        elif target.is_dir():
            scoped.update(target.rglob("*.py"))
    return sorted(scoped)


def main(argv: list[str] | None = None) -> int:
    paths = [Path(arg) for arg in (argv or [])] or iter_checked_files()
    violations: list[Violation] = []
    for path in paths:
        violations.extend(check_file(path))
    for violation in violations:
        print(violation.render(), file=sys.stderr)
    if violations:
        print(
            f"check_invariants: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print(f"check_invariants: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
